(* The threaded actor runtime: the same protocol on real OS threads.

   Thread scheduling makes these runs nondeterministic, so assertions are
   about end states and the offline oracle, not about traces. *)

module Rt = Runtime.Actor_runtime
module Node = Recovery.Node
module Config = Recovery.Config
module Counter = App_model.Counter_app
module Bank = App_model.Bank_app

(* Fast wall-clock timing: 1 abstract unit = 1 ms. *)
let timing =
  {
    Config.default_timing with
    flush_interval = Some 10.;
    checkpoint_interval = Some 50.;
    notice_interval = Some 8.;
    restart_delay = 20.;
  }

let test_basic_flow () =
  let config = Config.k_optimistic ~timing ~n:4 ~k:2 () in
  let rt = Rt.create ~config ~app:Counter.app () in
  for i = 1 to 10 do
    Rt.inject rt ~dst:(i mod 4) (Counter.Add i)
  done;
  Rt.inject rt ~dst:0 (Counter.Forward { dst = 3; amount = 100 });
  let done_ =
    Rt.await rt (fun () ->
        Rt.with_node rt 3 (fun nd ->
            let st : Counter.state = Node.app_state nd in
            st.total >= 100)
        && Rt.idle rt)
  in
  Rt.shutdown rt;
  Alcotest.(check bool) "forwarded amount arrived" true done_;
  let total =
    List.fold_left
      (fun acc pid ->
        acc + (Rt.with_node rt pid (fun nd -> (Node.app_state nd : Counter.state).total)))
      0 [ 0; 1; 2; 3 ]
  in
  (* 1..10 summed, +100 once at P0 (forward adds locally) +100 at P3 *)
  Alcotest.(check int) "all work applied exactly once" (55 + 200) total

let test_crash_recovery_threads () =
  let config = Config.k_optimistic ~timing ~n:4 ~k:2 () in
  let rt = Rt.create ~config ~app:Counter.app () in
  for i = 1 to 5 do
    Rt.inject rt ~dst:1 (Counter.Add i)
  done;
  (* Let some work land, then crash P1 mid-stream. *)
  ignore (Rt.await rt ~timeout:5. (fun () ->
      Rt.with_node rt 1 (fun nd -> (Node.app_state nd : Counter.state).handled >= 2)));
  Rt.crash rt ~pid:1;
  for i = 6 to 10 do
    Rt.inject rt ~dst:1 (Counter.Add i)
  done;
  let recovered =
    Rt.await rt ~timeout:15. (fun () ->
        Rt.with_node rt 1 (fun nd ->
            Node.is_up nd && (Node.app_state nd : Counter.state).total = 55))
  in
  Rt.shutdown rt;
  Alcotest.(check bool) "all ten additions survive the crash" true recovered;
  Alcotest.(check int) "restart happened" 1
    (Rt.with_node rt 1 (fun nd -> (Node.metrics nd).restarts))

let test_kill_respawn_from_disk () =
  (* The acceptance case for the durable subsystem on real threads: a node
     dies as a *process* (handle and store descriptors discarded), a fresh
     handle is created over the same directory, and it recovers solely from
     what open-time recovery reads back from disk.  The merged trace of
     both incarnations must still pass the causality oracle. *)
  let root = Durable.Temp.fresh_dir ~prefix:"test-rt-kill" () in
  Fun.protect
    ~finally:(fun () -> Durable.Temp.rm_rf root)
    (fun () ->
      let n = 4 in
      let config = Config.k_optimistic ~timing ~n ~k:2 () in
      let rt = Rt.create ~config ~app:Counter.app ~store_root:root () in
      for i = 1 to 5 do
        Rt.inject rt ~dst:1 (Counter.Add i)
      done;
      ignore
        (Rt.await rt ~timeout:5. (fun () ->
             Rt.with_node rt 1 (fun nd ->
                 (Node.app_state nd : Counter.state).handled >= 5)));
      Rt.kill rt ~pid:1;
      for i = 6 to 10 do
        Rt.inject rt ~dst:1 (Counter.Add i)
      done;
      let recovered =
        Rt.await rt ~timeout:15. (fun () ->
            Rt.with_node rt 1 (fun nd ->
                Node.is_up nd && (Node.app_state nd : Counter.state).total = 55))
      in
      let disk_recovery_ok =
        Rt.with_node rt 1 (fun nd ->
            match Node.storage_report nd with
            | Some r ->
              (not r.Storage.Stable_store.fresh)
              && not (Storage.Stable_store.report_damaged r)
            | None -> false)
      in
      ignore (Rt.await rt ~timeout:10. (fun () -> Rt.idle rt));
      Thread.delay 0.1;
      Rt.shutdown rt;
      Alcotest.(check bool) "all ten additions survive the process death" true
        recovered;
      Alcotest.(check bool) "respawned handle recovered from pre-existing files"
        true disk_recovery_ok;
      let report = Harness.Oracle.check ~k:2 ~n (Rt.trace rt) in
      if not (Harness.Oracle.ok report) then
        Alcotest.failf "oracle on merged kill/respawn trace: %a"
          Harness.Oracle.pp_report report)

let test_money_conserved_on_threads () =
  let n = 4 in
  let config = Config.k_optimistic ~timing ~n ~k:2 () in
  let rt = Rt.create ~config ~app:Bank.app () in
  let deposited = ref 0 in
  for i = 1 to 12 do
    deposited := !deposited + (10 * i);
    Rt.inject rt ~dst:(i mod n) (Bank.Deposit { account = i; amount = 10 * i })
  done;
  for i = 1 to 30 do
    Rt.inject rt ~dst:(i mod n)
      (Bank.Transfer
         {
           from_account = i mod 12;
           to_shard = (i * 7) mod n;
           to_account = (i * 3) mod 12;
           amount = 5;
         })
  done;
  Rt.crash rt ~pid:2;
  let conserved () =
    List.fold_left
      (fun acc pid -> acc + Rt.with_node rt pid (fun nd -> Bank.total (Node.app_state nd)))
      0
      (List.init n Fun.id)
    = !deposited
  in
  let settled = Rt.await rt ~timeout:20. (fun () -> Rt.idle rt && conserved ()) in
  Rt.shutdown rt;
  Alcotest.(check bool) "money conserved on real threads" true settled

let test_oracle_on_threaded_trace () =
  let n = 4 in
  let config = Config.k_optimistic ~timing ~n ~k:2 () in
  let rt = Rt.create ~config ~app:Counter.app () in
  for i = 1 to 8 do
    Rt.inject rt ~dst:(i mod n) (Counter.Forward { dst = (i + 1) mod n; amount = i })
  done;
  Rt.crash rt ~pid:0;
  ignore (Rt.await rt ~timeout:15. (fun () -> Rt.idle rt));
  Thread.delay 0.1;
  Rt.shutdown rt;
  (* The big lock serializes handler execution, so the shared trace is a
     valid linearization and the oracle applies as-is. *)
  let report = Harness.Oracle.check ~k:2 ~n (Rt.trace rt) in
  if not (Harness.Oracle.ok report) then
    Alcotest.failf "oracle on threaded run: %a" Harness.Oracle.pp_report report

let test_lifo_scheduler_still_correct () =
  (* A perverse mailbox service order (always newest message first) must
     not break the protocol: delivery conditions and the send gate are
     order-independent, and the oracle certifies the trace. *)
  let n = 3 in
  let config = Config.k_optimistic ~timing ~n ~k:1 () in
  let lifo = Sim.Scheduler.of_fun (fun ~n_enabled -> n_enabled - 1) in
  let rt = Rt.create ~config ~app:Counter.app ~scheduler:lifo () in
  for i = 1 to 10 do
    Rt.inject rt ~dst:(i mod n) (Counter.Forward { dst = (i + 1) mod n; amount = i })
  done;
  ignore (Rt.await rt ~timeout:15. (fun () -> Rt.idle rt));
  Thread.delay 0.1;
  Rt.shutdown rt;
  let report = Harness.Oracle.check ~k:1 ~n (Rt.trace rt) in
  if not (Harness.Oracle.ok report) then
    Alcotest.failf "oracle under LIFO scheduling: %a" Harness.Oracle.pp_report report

let test_shutdown_idempotent () =
  let config = Config.k_optimistic ~timing ~n:2 ~k:1 () in
  let rt = Rt.create ~config ~app:Counter.app () in
  Rt.shutdown rt;
  Rt.shutdown rt

(* kill requires the durable store: losing the node handle of an in-memory
   store would lose the whole process history, so it must be refused. *)
let test_kill_requires_store_root () =
  let config = Config.k_optimistic ~timing ~n:2 ~k:1 () in
  let rt = Rt.create ~config ~app:Counter.app () in
  Alcotest.check_raises "kill without ~store_root"
    (Invalid_argument "Actor_runtime.kill: runtime was created without ~store_root")
    (fun () -> Rt.kill rt ~pid:0);
  Rt.shutdown rt

let suite =
  [
    Alcotest.test_case "basic flow" `Slow test_basic_flow;
    Alcotest.test_case "crash recovery on threads" `Slow test_crash_recovery_threads;
    Alcotest.test_case "kill + respawn from disk" `Slow test_kill_respawn_from_disk;
    Alcotest.test_case "money conserved on threads" `Slow test_money_conserved_on_threads;
    Alcotest.test_case "oracle on a threaded trace" `Slow test_oracle_on_threaded_trace;
    Alcotest.test_case "LIFO mailbox scheduling stays correct" `Slow
      test_lifo_scheduler_still_correct;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "kill requires a store root" `Quick
      test_kill_requires_store_root;
  ]
