(* The bounded model checker and the serialized schedule format. *)

module Config = Recovery.Config
module Schedule = Harness.Schedule
module Explore = Harness.Explore
module Chaos = Harness.Chaos
module Counter = App_model.Counter_app

let tiny : Schedule.explore_params =
  { Schedule.n = 2; k = 1; messages = 2; crashes = 1; flushes = 1; seed = 1 }

let send_gate_broken = { Config.no_breakage with Config.break_send_gate = true }

let test_exhausts_and_certifies () =
  let r = Explore.run tiny in
  Alcotest.(check bool) "state space exhausted" true r.Explore.complete;
  Alcotest.(check bool) "no violations" true (Explore.ok r);
  Alcotest.(check bool) "non-trivial space" true (r.Explore.schedules > 100);
  Alcotest.(check bool) "POR pruned more than one schedule" true
    (r.Explore.sleep_pruned > 1);
  Alcotest.(check bool) "risk within K" true (r.Explore.max_risk <= tiny.Schedule.k)

let test_exploration_deterministic () =
  let strip r = { r with Explore.violations = [] } in
  let r1 = Explore.run tiny and r2 = Explore.run tiny in
  Alcotest.(check bool) "identical statistics on identical runs" true
    (strip r1 = strip r2 && r1.Explore.violations = r2.Explore.violations)

let test_k_boundaries () =
  (* K=0 is the pessimistic end: no released message can be revoked by
     anyone, in *every* schedule.  K=N never gates, so the risk bound is
     the trivial one — but still must hold. *)
  let r0 = Explore.run { tiny with Schedule.k = 0 } in
  Alcotest.(check bool) "K=0 complete+clean" true
    (r0.Explore.complete && Explore.ok r0);
  Alcotest.(check int) "K=0: zero risk in every schedule" 0 r0.Explore.max_risk;
  let rn = Explore.run { tiny with Schedule.k = 2 } in
  Alcotest.(check bool) "K=N complete+clean" true
    (rn.Explore.complete && Explore.ok rn);
  Alcotest.(check bool) "K=N: risk bounded by N" true (rn.Explore.max_risk <= 2)

let test_broken_send_gate_caught () =
  let r = Explore.run ~breakage:send_gate_broken tiny in
  Alcotest.(check bool) "violations found" true (r.Explore.violations <> []);
  let sched, notes = List.hd r.Explore.violations in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "oracle names Theorem 4" true
    (List.exists (contains ~needle:"Theorem 4") notes);
  Alcotest.(check bool) "counter-example records its choices" true
    (sched.Schedule.choices <> []);
  (* The schedule round-trips through the codec byte-for-byte ... *)
  (match Schedule.of_string (Schedule.to_string sched) with
  | Ok sched' ->
    Alcotest.(check bool) "codec round-trip" true (sched' = sched);
    Alcotest.(check string) "byte-stable re-encoding"
      (Schedule.to_string sched) (Schedule.to_string sched')
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg);
  (* ... and replays to the verdict class it recorded. *)
  let verdict = Explore.replay sched in
  Alcotest.(check bool) "replays to recorded verdict" true
    (Explore.verdict_matches sched.Schedule.expect verdict)

let test_preemption_bound_truncates () =
  let bounds =
    { Explore.default_bounds with Explore.preemptions = Some 1 }
  in
  let r = Explore.run ~bounds tiny in
  Alcotest.(check bool) "bounded search is a strict under-approximation" true
    (r.Explore.truncated > 0 && not r.Explore.complete);
  Alcotest.(check bool) "still clean" true (Explore.ok r);
  let full = Explore.run tiny in
  Alcotest.(check bool) "explores fewer schedules than the full search" true
    (r.Explore.schedules < full.Explore.schedules)

let test_replay_canonical_drain () =
  (* An empty choice list means: drain in canonical order.  That replay is
     deterministic and certified. *)
  match Explore.replay_explore tiny ~choices:[] with
  | Chaos.Certified _ -> ()
  | v -> Alcotest.failf "canonical drain not certified: %a" Chaos.pp_verdict v

let test_schedule_codec_errors () =
  let bad s =
    match Schedule.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "bad magic" true (bad "koptlog-schedule v0\nname: x\n");
  Alcotest.(check bool) "missing scenario" true
    (bad "koptlog-schedule v1\nname: x\nexpect: certified\n");
  Alcotest.(check bool) "unknown expect" true
    (bad
       "koptlog-schedule v1\nname: x\nexpect: maybe\nscenario: figure1 improved\n");
  Alcotest.(check bool) "fault line under explore" true
    (bad
       "koptlog-schedule v1\nname: x\nexpect: certified\nscenario: explore n=2 \
        k=1 messages=1 crashes=0 flushes=0 seed=1\nfault: loss 0.5\n")

let test_chaos_schedule_roundtrip () =
  (* Every fault constructor, odd floats included, survives the codec. *)
  let case =
    {
      Schedule.n = 5;
      k = 2;
      seed = 10_007;
      faults =
        [
          Schedule.Loss 0.037_000_000_000_000_005;
          Schedule.Duplication (1. /. 3.);
          Schedule.Reorder (0.2, 17.25);
          Schedule.Partition
            { group = [ 0; 2; 4 ]; from_ = 40.5; until = 90.125; drop = false };
          Schedule.Crash { kind = Schedule.Single 1; time = 55. };
          Schedule.Crash { kind = Schedule.Group [ 0; 3 ]; time = 60. };
          Schedule.Crash { kind = Schedule.Cascade [ 1; 2; 3 ]; time = 70. };
          Schedule.Crash { kind = Schedule.In_checkpoint 2; time = 80. };
          Schedule.Crash { kind = Schedule.In_flush 4; time = 85. };
          Schedule.Kill { pid = 3; time = 100.; storage = None };
          Schedule.Kill
            {
              pid = 1;
              time = 120.;
              storage = Some (List.hd Durable.Fault.all);
            };
        ];
    }
  in
  let sched =
    {
      Schedule.name = "roundtrip-all-faults";
      expect = Schedule.Violated;
      breakage =
        { Config.no_breakage with
          Config.break_orphan_check = true;
          break_send_gate = true;
        };
      scenario = Schedule.Chaos { case; calls = 42 };
      choices = [];
    }
  in
  match Schedule.of_string (Schedule.to_string sched) with
  | Ok sched' -> Alcotest.(check bool) "round-trip" true (sched = sched')
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg

let test_chaos_to_schedule_replays () =
  (* A deliberately broken protocol fails a chaos case; the shrunk case
     wrapped as a schedule must replay to the same verdict class. *)
  let rng = Sim.Rng.create 7 in
  let case = Chaos.random_case rng ~index:0 in
  let outcome = Chaos.run_case ~breakage:send_gate_broken ~calls:20 case in
  if Chaos.verdict_failed outcome.Chaos.verdict then begin
    let minimal = Chaos.shrink ~breakage:send_gate_broken case in
    let verdict =
      (Chaos.run_case ~breakage:send_gate_broken minimal).Chaos.verdict
    in
    let sched =
      Chaos.to_schedule ~breakage:send_gate_broken ~calls:60 ~name:"shrunk" minimal
        verdict
    in
    let replayed = Explore.replay sched in
    Alcotest.(check bool) "minimized chaos case replays via schedule" true
      (Explore.verdict_matches sched.Schedule.expect replayed)
  end
  (* If this particular case happens to pass even when broken, the corpus
     test still covers the chaos replay path with a pinned failing case. *)

let test_earliest_scheduler_transparent () =
  (* A Scheduler that always picks index 0 must be observationally
     identical to running without one, on a timed, crashy workload. *)
  let run scheduler =
    let config = Config.k_optimistic ~n:3 ~k:1 () in
    let cluster =
      Harness.Cluster.create ~config ~app:Counter.app ~seed:11 ?scheduler ()
    in
    for i = 1 to 8 do
      Harness.Cluster.inject_at cluster
        ~time:(10. *. float_of_int i)
        ~dst:(i mod 3)
        (Counter.Forward { dst = (i + 1) mod 3; amount = i })
    done;
    Harness.Cluster.crash_at cluster ~time:35. ~pid:1;
    Harness.Cluster.run cluster;
    Harness.Cluster.stats cluster
  in
  let default = run None and earliest = run (Some (Sim.Scheduler.earliest ())) in
  Alcotest.(check bool) "bit-identical statistics" true (default = earliest)

let suite =
  [
    Alcotest.test_case "exhausts a tiny config, POR prunes, oracle clean" `Slow
      test_exhausts_and_certifies;
    Alcotest.test_case "exploration is deterministic" `Slow
      test_exploration_deterministic;
    Alcotest.test_case "K=0 and K=N boundaries" `Slow test_k_boundaries;
    Alcotest.test_case "broken send gate yields replayable counter-example" `Slow
      test_broken_send_gate_caught;
    Alcotest.test_case "preemption bound under-approximates" `Slow
      test_preemption_bound_truncates;
    Alcotest.test_case "empty choices = canonical drain, certified" `Quick
      test_replay_canonical_drain;
    Alcotest.test_case "codec rejects malformed schedules" `Quick
      test_schedule_codec_errors;
    Alcotest.test_case "chaos schedule round-trips all fault kinds" `Quick
      test_chaos_schedule_roundtrip;
    Alcotest.test_case "shrunk chaos case replays via schedule" `Slow
      test_chaos_to_schedule_replays;
    Alcotest.test_case "earliest scheduler is transparent" `Quick
      test_earliest_scheduler_transparent;
  ]
