(* Unit tests for the smaller harness and recovery pieces: report tables,
   the network model, workload generators, trace rendering and wire
   helpers. *)

open Util
module Wire = Recovery.Wire
module Trace = Recovery.Trace
module Config = Recovery.Config

(* --- Report ---------------------------------------------------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let demo_report () =
  let t = Harness.Report.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Harness.Report.add_row t [ "alpha"; "1" ];
  Harness.Report.add_row t [ "beta-long-cell"; "2" ];
  Harness.Report.note t "a footnote";
  t

let test_report_renders () =
  let rendered = Fmt.str "%a" Harness.Report.pp (demo_report ()) in
  Alcotest.(check bool) "title present" true (contains rendered "demo");
  Alcotest.(check bool) "row present" true (contains rendered "alpha");
  Alcotest.(check bool) "note present" true (contains rendered "a footnote")

let test_report_column_mismatch () =
  let t = Harness.Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Report.add_row: 1 cells for 2 columns in \"t\"") (fun () ->
      Harness.Report.add_row t [ "only-one" ])

let test_report_cells () =
  Alcotest.(check string) "float" "3.14" (Harness.Report.cell_f 3.14159);
  Alcotest.(check string) "nan" "-" (Harness.Report.cell_f Float.nan);
  Alcotest.(check string) "int" "42" (Harness.Report.cell_i 42);
  Alcotest.(check string) "pct" "12.5%" (Harness.Report.cell_pct 12.5);
  let s = Sim.Summary.create () in
  Alcotest.(check string) "empty summary" "-" (Harness.Report.cell_summary s);
  Sim.Summary.add s 2.;
  Alcotest.(check string) "summary" "2.00/2.00" (Harness.Report.cell_summary s)

(* --- Netmodel -------------------------------------------------------- *)

let timing = Config.default_timing

let test_transit_after_now () =
  let net =
    Harness.Netmodel.create ~n:4 ~timing ~rng:(Sim.Rng.create 1) ()
  in
  for i = 1 to 50 do
    let now = float_of_int i in
    let arrival =
      Harness.Netmodel.transit net ~now ~src:0 ~dst:1 ~kind:"app" ~entries:3
    in
    if arrival < now then Alcotest.fail "arrival before send"
  done

let test_per_entry_overhead () =
  let timing = { timing with net_jitter = 0.0000001; per_entry_overhead = 1. } in
  let net = Harness.Netmodel.create ~n:2 ~timing ~rng:(Sim.Rng.create 1) () in
  let small = Harness.Netmodel.transit net ~now:0. ~src:0 ~dst:1 ~kind:"app" ~entries:0 in
  let big = Harness.Netmodel.transit net ~now:0. ~src:0 ~dst:1 ~kind:"app" ~entries:10 in
  Alcotest.(check bool) "10 entries cost ~10 units more" true (big -. small > 9.5)

let test_fifo_monotone () =
  let timing = { timing with fifo = true; net_jitter = 50. } in
  let net = Harness.Netmodel.create ~n:2 ~timing ~rng:(Sim.Rng.create 3) () in
  let last = ref 0. in
  for i = 0 to 30 do
    let arrival =
      Harness.Netmodel.transit net ~now:(float_of_int i) ~src:0 ~dst:1 ~kind:"app"
        ~entries:0
    in
    if arrival <= !last then Alcotest.fail "FIFO violated";
    last := arrival
  done

let test_override_wins () =
  let override ~src:_ ~dst:_ ~packet_kind = if packet_kind = "ann" then Some 99. else None in
  let net = Harness.Netmodel.create ~n:2 ~timing ~rng:(Sim.Rng.create 3) ~override () in
  let a = Harness.Netmodel.transit net ~now:1. ~src:0 ~dst:1 ~kind:"ann" ~entries:0 in
  Alcotest.(check (float 0.0001)) "override applied" 100. a;
  let b = Harness.Netmodel.transit net ~now:1. ~src:0 ~dst:1 ~kind:"app" ~entries:0 in
  Alcotest.(check bool) "model used otherwise" true (b < 10.)

let test_packet_accounting () =
  let net = Harness.Netmodel.create ~n:2 ~timing ~rng:(Sim.Rng.create 3) () in
  ignore (Harness.Netmodel.transit net ~now:0. ~src:0 ~dst:1 ~kind:"app" ~entries:4);
  ignore (Harness.Netmodel.transit net ~now:0. ~src:1 ~dst:0 ~kind:"app" ~entries:1);
  ignore (Harness.Netmodel.transit net ~now:0. ~src:0 ~dst:1 ~kind:"ann" ~entries:0);
  Alcotest.(check (list (pair string int))) "counts by kind"
    [ ("ann", 1); ("app", 2) ]
    (Harness.Netmodel.packets_sent net);
  Alcotest.(check int) "entries carried" 5 (Harness.Netmodel.entries_carried net)

(* --- Workload -------------------------------------------------------- *)

let test_workload_counts () =
  let config = Config.k_optimistic ~n:4 ~k:4 () in
  let c =
    Harness.Cluster.create ~config ~app:App_model.Telecom_app.app ~horizon:4000. ()
  in
  Harness.Workload.telecom c ~rng:(Sim.Rng.create 1) ~calls:25 ~hops:2 ~start:5.
    ~rate:2.;
  Harness.Cluster.run c;
  Alcotest.(check int) "each call commits one output" 25
    (Harness.Cluster.stats c).outputs_committed

let test_failure_schedule_in_window () =
  let config = Config.k_optimistic ~n:4 ~k:4 () in
  let c =
    Harness.Cluster.create ~config ~app:App_model.Counter_app.app ~horizon:300. ()
  in
  Harness.Workload.random_failures c ~rng:(Sim.Rng.create 5) ~count:3
    ~window:(10., 100.);
  Harness.Cluster.run c;
  (* All crashes land inside the horizon, so every one produced a restart
     (unless two hit the same down process, which the seed avoids). *)
  Alcotest.(check bool) "restarts happened" true ((Harness.Cluster.stats c).restarts >= 1)

(* --- Trace / Wire ---------------------------------------------------- *)

let test_trace_order_and_length () =
  let tr = Trace.create () in
  Trace.add tr ~time:2. (Trace.Notice_sent { pid = 0; entries = 1 });
  Trace.add tr ~time:1. (Trace.Notice_sent { pid = 1; entries = 2 });
  Alcotest.(check int) "length" 2 (Trace.length tr);
  match Trace.events tr with
  | [ a; b ] ->
    (* insertion order, not time order: the trace is an append log *)
    Alcotest.(check (float 0.0)) "first" 2. a.Trace.time;
    Alcotest.(check (float 0.0)) "second" 1. b.Trace.time
  | _ -> Alcotest.fail "expected two entries"

let test_trace_pp_smoke () =
  let tr = Trace.create () in
  Trace.add tr ~time:1.
    (Trace.Interval_started
       {
         pid = 0;
         interval = e ~inc:0 ~sii:2;
         pred = Some (e ~inc:0 ~sii:1);
         by = None;
         sender_interval = None;
         digest = 0;
         replay = true;
       });
  Trace.add tr ~time:2.
    (Trace.Crashed { pid = 1; first_lost = Some (e ~inc:0 ~sii:5) });
  let s = Fmt.str "%a" Trace.dump tr in
  Alcotest.(check bool) "mentions replay" true (contains s "replay");
  Alcotest.(check bool) "mentions loss" true (contains s "loses from")

let test_wire_helpers () =
  Alcotest.(check string) "packet kinds" "app,ann,notice,ack,flush-req,dep-query,dep-reply"
    (String.concat ","
       (List.map Wire.packet_kind
          [
            Wire.App
              {
                Wire.id = { Wire.origin = 0; origin_interval = e ~inc:0 ~sii:1; idx = 0 };
                src = 0;
                dst = 1;
                send_interval = e ~inc:0 ~sii:1;
                dep = [];
                payload = ();
              };
            Wire.Ann { Wire.from_ = 0; ending = e ~inc:0 ~sii:1; failure = true };
            Wire.Notice { Wire.from_ = 0; rows = []; anns = [] };
            Wire.Ack { Wire.from_ = 0; to_ = 1; ids = [] };
            Wire.Flush_request { from_ = 0 };
            Wire.Dep_query { from_ = 0; intervals = [] };
            Wire.Dep_reply { from_ = 0; infos = [] };
          ]));
  let notice =
    {
      Wire.from_ = 0;
      rows = [ (1, [ e ~inc:0 ~sii:1 ]); (2, [ e ~inc:0 ~sii:1; e ~inc:1 ~sii:2 ]) ];
      anns = [];
    }
  in
  Alcotest.(check int) "notice entries" 3 (Wire.notice_entry_count notice);
  let gossiping =
    {
      notice with
      Wire.anns = [ { Wire.from_ = 1; ending = e ~inc:0 ~sii:4; failure = true } ];
    }
  in
  Alcotest.(check int) "gossiped announcements count as entries" 4
    (Wire.notice_entry_count gossiping)

let test_experiment_registry () =
  Alcotest.(check bool) "figure1 registered" true
    (Harness.Experiments.by_name "figure1" <> None);
  Alcotest.(check bool) "unknown rejected" true
    (Harness.Experiments.by_name "nope" = None);
  Alcotest.(check bool) "exhaustive registered" true
    (Harness.Experiments.by_name "exhaustive" <> None);
  Alcotest.(check int) "fifteen experiments" 15 (List.length Harness.Experiments.names)

let suite =
  [
    Alcotest.test_case "report renders" `Quick test_report_renders;
    Alcotest.test_case "report column mismatch" `Quick test_report_column_mismatch;
    Alcotest.test_case "report cells" `Quick test_report_cells;
    Alcotest.test_case "transit never before now" `Quick test_transit_after_now;
    Alcotest.test_case "per-entry overhead" `Quick test_per_entry_overhead;
    Alcotest.test_case "fifo monotone" `Quick test_fifo_monotone;
    Alcotest.test_case "override wins" `Quick test_override_wins;
    Alcotest.test_case "packet accounting" `Quick test_packet_accounting;
    Alcotest.test_case "telecom workload counts" `Slow test_workload_counts;
    Alcotest.test_case "failure schedule in window" `Quick test_failure_schedule_in_window;
    Alcotest.test_case "trace order and length" `Quick test_trace_order_and_length;
    Alcotest.test_case "trace pp smoke" `Quick test_trace_pp_smoke;
    Alcotest.test_case "wire helpers" `Quick test_wire_helpers;
    Alcotest.test_case "experiment registry" `Quick test_experiment_registry;
  ]
