(* The durable storage subsystem: record codec, segmented log, open-time
   recovery, storage fault injection, and crash-restart-from-disk at the
   node and cluster level.  Conformance of the durable backend against the
   in-memory [Stable_store] contract is in [Test_storage]; these tests
   cover what only a file-backed store can do: die, get damaged, and come
   back from its files. *)

module Codec = Durable.Codec
module Seg = Durable.Segment_log
module D = Durable.Durable_store
module Node = Recovery.Node
module Config = Recovery.Config
module Counter = App_model.Counter_app

let with_dir f =
  let dir = Durable.Temp.fresh_dir ~prefix:"test-durable" () in
  Fun.protect ~finally:(fun () -> Durable.Temp.rm_rf dir) (fun () -> f dir)

(* Raw file damage helpers (the tests aim at specific bytes, unlike the
   randomized [Durable.Fault]). *)

let chop path n =
  let sz = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd (Stdlib.max 0 (sz - n)))

let flip path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      ignore (Unix.read fd b 0 1 : int);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      ignore (Unix.write fd b 0 1 : int))

let seg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "seg-")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let ckpt_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "ckpt-")
  |> List.sort compare
  |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip () =
  let payloads = [ ""; "x"; String.make 1000 'q'; "\x00\xff\xd7" ] in
  let buf = Buffer.create 64 in
  List.iteri (fun i p -> Codec.encode_into buf ~kind:(0x41 + i) p) payloads;
  let s = Buffer.contents buf in
  Alcotest.(check int) "framed size"
    (List.fold_left (fun acc p -> acc + Codec.header_bytes + String.length p) 0 payloads)
    (String.length s);
  let scan = Codec.scan s in
  Alcotest.(check bool) "clean tail" true (scan.Codec.tail = Codec.Clean);
  Alcotest.(check (list (pair int string)))
    "all records back, in order"
    (List.mapi (fun i p -> (0x41 + i, p)) payloads)
    scan.Codec.records

let test_codec_anomalies () =
  (match Codec.decode "" ~pos:0 with
  | Codec.End -> ()
  | _ -> Alcotest.fail "empty input must be End");
  let s = Codec.encode ~kind:0x4C "hello" in
  (match Codec.decode (String.sub s 0 4) ~pos:0 with
  | Codec.Truncated -> ()
  | _ -> Alcotest.fail "partial header must be Truncated");
  (match Codec.decode (String.sub s 0 (String.length s - 2)) ~pos:0 with
  | Codec.Truncated -> ()
  | _ -> Alcotest.fail "partial payload must be Truncated");
  let bad_magic = "Z" ^ String.sub s 1 (String.length s - 1) in
  (match Codec.decode bad_magic ~pos:0 with
  | Codec.Corrupt -> ()
  | _ -> Alcotest.fail "bad magic must be Corrupt");
  let tampered = Bytes.of_string s in
  Bytes.set tampered (Codec.header_bytes + 1) 'X';
  (match Codec.decode (Bytes.to_string tampered) ~pos:0 with
  | Codec.Corrupt -> ()
  | _ -> Alcotest.fail "checksum mismatch must be Corrupt")

let test_codec_scan_stops_at_torn_tail () =
  let buf = Buffer.create 64 in
  Codec.encode_into buf ~kind:0x4C "one";
  Codec.encode_into buf ~kind:0x4C "two";
  let whole = Buffer.contents buf in
  let torn = String.sub whole 0 (String.length whole - 1) in
  let scan = Codec.scan torn in
  Alcotest.(check (list (pair int string))) "prefix survives"
    [ (0x4C, "one") ] scan.Codec.records;
  Alcotest.(check bool) "tail torn" true (scan.Codec.tail = Codec.Torn);
  Alcotest.(check int) "valid prefix length"
    (Codec.header_bytes + 3) scan.Codec.valid_bytes

(* ------------------------------------------------------------------ *)
(* Segment log *)

let test_segment_rotation_and_reopen () =
  with_dir (fun dir ->
      let log, r0 = Seg.open_ ~dir ~segment_bytes:64 () in
      Alcotest.(check (list string)) "fresh" [] r0.Seg.payloads;
      let payloads = List.init 20 (fun i -> Printf.sprintf "record-%02d" i) in
      List.iteri
        (fun i p -> Alcotest.(check int) "index" i (Seg.append log p))
        payloads;
      Seg.sync log;
      Alcotest.(check bool) "rotated" true (Seg.segment_count log > 1);
      Seg.kill log;
      let log2, r = Seg.open_ ~dir ~segment_bytes:64 () in
      Alcotest.(check (list string)) "all synced records recovered" payloads
        r.Seg.payloads;
      Alcotest.(check int) "no bytes dropped" 0 r.Seg.bytes_dropped;
      Alcotest.(check int) "next index continues" 20 (Seg.next_index log2);
      Seg.close log2)

let test_segment_kill_drops_unsynced () =
  with_dir (fun dir ->
      let log, _ = Seg.open_ ~dir () in
      ignore (Seg.append log "synced" : int);
      Seg.sync log;
      ignore (Seg.append log "lost" : int);
      Seg.kill log;
      let log2, r = Seg.open_ ~dir () in
      Alcotest.(check (list string)) "only synced survives" [ "synced" ] r.Seg.payloads;
      Alcotest.(check bool) "clean tail (no torn bytes on disk)" true
        (r.Seg.tail = Codec.Clean);
      Seg.close log2)

let test_segment_boundary_gap_detected () =
  with_dir (fun dir ->
      let log, _ = Seg.open_ ~dir ~segment_bytes:64 () in
      List.iter
        (fun i -> ignore (Seg.append log (Printf.sprintf "r%02d" i) : int))
        (List.init 20 Fun.id);
      Seg.sync log;
      let segs = Seg.segment_count log in
      Alcotest.(check bool) "several segments" true (segs >= 3);
      Seg.close log;
      (* Cut exactly one whole record off a middle segment: the segment
         still scans clean, but every later segment now starts past the
         recovered count — recovery must notice the index gap and drop the
         later segments rather than renumber records. *)
      (match seg_files dir with
      | _ :: middle :: _ -> chop middle (Codec.header_bytes + 3)
      | _ -> Alcotest.fail "expected at least two segments");
      let log2, r = Seg.open_ ~dir ~segment_bytes:64 () in
      Alcotest.(check bool) "corrupt tail" true (r.Seg.tail = Codec.Corrupt_tail);
      Alcotest.(check bool) "later segments dropped" true (r.Seg.segments_dropped >= 1);
      Alcotest.(check bool) "strict prefix recovered" true
        (List.length r.Seg.payloads < 20);
      (* what survives is a gap-free prefix *)
      List.iteri
        (fun i p -> Alcotest.(check string) "prefix record" (Printf.sprintf "r%02d" i) p)
        r.Seg.payloads;
      Seg.close log2)

let test_segment_truncate_and_compact () =
  with_dir (fun dir ->
      let log, _ = Seg.open_ ~dir ~segment_bytes:64 () in
      List.iter
        (fun i -> ignore (Seg.append log (Printf.sprintf "r%02d" i) : int))
        (List.init 20 Fun.id);
      Seg.sync log;
      Seg.truncate_after log ~keep:12;
      Alcotest.(check int) "appends continue at keep" 12 (Seg.append log "new-12");
      Seg.sync log;
      Seg.drop_segments_below log ~before:8;
      Alcotest.(check bool) "old segments gone" true (Seg.first_index log > 0);
      Seg.kill log;
      let log2, r = Seg.open_ ~dir ~segment_bytes:64 () in
      Alcotest.(check int) "first index survives reopen" (Seg.first_index log2) r.Seg.first;
      let expected =
        List.filteri (fun i _ -> i + r.Seg.first < 12) (List.init 20 Fun.id)
        |> List.map (fun i -> Printf.sprintf "r%02d" (i + r.Seg.first))
      in
      Alcotest.(check (list string)) "suffix + new record"
        (expected @ [ "new-12" ])
        r.Seg.payloads;
      Seg.close log2)

(* ------------------------------------------------------------------ *)
(* Durable store: open-time recovery under damage *)

let open_str dir : (string, string, string) D.t * D.open_report = D.open_ ~dir ()

let test_store_reopen_roundtrip () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      D.save_checkpoint s "ck0";
      List.iter (D.append_volatile s) [ "a"; "b"; "c" ];
      ignore (D.flush s : int);
      D.log_announcement s "ann1";
      D.set_incarnation s 2;
      D.append_volatile s "volatile-lost";
      D.kill s;
      let s2, r = open_str dir in
      Alcotest.(check bool) "not fresh" false r.D.fresh;
      Alcotest.(check bool) "undamaged" false (D.damaged r);
      Alcotest.(check int) "log recovered" 3 r.D.recovered_log;
      Alcotest.(check (list string)) "log back" [ "a"; "b"; "c" ]
        (D.stable_log_from s2 ~pos:0);
      Alcotest.(check (list string)) "checkpoint back" [ "ck0" ] (D.checkpoints s2);
      Alcotest.(check (list string)) "announcement back" [ "ann1" ]
        (D.announcements s2);
      Alcotest.(check int) "incarnation back" 2 (D.incarnation s2);
      Alcotest.(check int) "volatile gone" 0 (D.volatile_length s2);
      D.kill s2)

let test_store_torn_tail_truncated () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      List.iter (D.append_volatile s) [ "a"; "b"; "c" ];
      ignore (D.flush s : int);
      D.kill s;
      (match seg_files dir with
      | [ seg ] -> chop seg 3
      | _ -> Alcotest.fail "expected one segment");
      let s2, r = open_str dir in
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      Alcotest.(check bool) "bytes dropped" true (r.D.log_bytes_dropped > 0);
      Alcotest.(check int) "prefix recovered" 2 r.D.recovered_log;
      (* the witness knows three records were stable *)
      Alcotest.(check int) "missing vs witness" 1 r.D.missing_log_records;
      Alcotest.(check (list string)) "prefix intact" [ "a"; "b" ]
        (D.stable_log_from s2 ~pos:0);
      D.kill s2)

let test_store_bit_flip_never_wrong_record () =
  (* Flip one byte in the middle of the log: recovery may lose a suffix but
     must never hand back a record that was not written. *)
  with_dir (fun dir ->
      let payloads = List.init 8 (fun i -> Printf.sprintf "payload-%d" i) in
      let s, _ = open_str dir in
      List.iter (D.append_volatile s) payloads;
      ignore (D.flush s : int);
      D.kill s;
      let seg = List.hd (seg_files dir) in
      flip seg ((Unix.stat seg).Unix.st_size / 2);
      let s2, r = open_str dir in
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      let recovered = D.stable_log_from s2 ~pos:0 in
      Alcotest.(check bool) "strict prefix" true (List.length recovered < 8);
      List.iteri
        (fun i p -> Alcotest.(check string) "true prefix record" (List.nth payloads i) p)
        recovered;
      D.kill s2)

let test_store_failing_fsync_detected () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      D.append_volatile s "durable";
      ignore (D.flush s : int);
      D.arm_fsync_failure s;
      List.iter (D.append_volatile s) [ "claimed-1"; "claimed-2" ];
      ignore (D.flush s : int);
      (* the store believes three records are stable *)
      Alcotest.(check int) "store claims 3" 3 (D.stable_log_length s);
      D.kill s;
      let s2, r = open_str dir in
      Alcotest.(check int) "only the honest record survives" 1 r.D.recovered_log;
      Alcotest.(check int) "the lie is exposed at reopen" 2 r.D.missing_log_records;
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      D.kill s2)

let test_store_group_commit_coalesces () =
  (* N threads each append a record, meet at a barrier, then all call
     [flush] at once.  The group-commit layer must serve every caller from
     a single fsync round: the leader's prepare drains all N records, the
     rest either wait out that round or find nothing left to do. *)
  with_dir (fun dir ->
      let s, _ = open_str dir in
      let n = 8 in
      let mu = Mutex.create () in
      let cv = Condition.create () in
      let ready = ref 0 in
      let barrier () =
        Mutex.lock mu;
        incr ready;
        if !ready = n then Condition.broadcast cv
        else while !ready < n do Condition.wait cv mu done;
        Mutex.unlock mu
      in
      let worker i =
        D.append_volatile s (Printf.sprintf "rec-%d" i);
        barrier ();
        ignore (D.flush s : int)
      in
      let threads = List.init n (Thread.create worker) in
      List.iter Thread.join threads;
      Alcotest.(check int) "all records stable" n (D.stable_log_length s);
      Alcotest.(check int) "no volatile leftovers" 0 (D.volatile_length s);
      Alcotest.(check int) "N concurrent flushes, one fsync round" 1 (D.flushes s);
      let gc = D.commit_stats s in
      Alcotest.(check bool) "strictly fewer rounds than callers" true
        (gc.Durable.Group_commit.rounds < n);
      Alcotest.(check (list string)) "every record made it"
        (List.sort compare (List.init n (Printf.sprintf "rec-%d")))
        (List.sort compare (D.stable_log_from s ~pos:0));
      D.kill s;
      let s2, r = open_str dir in
      Alcotest.(check bool) "clean reopen" false (D.damaged r);
      Alcotest.(check int) "all records recovered" n r.D.recovered_log;
      D.kill s2)

let test_store_corrupt_checkpoint_dropped () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      D.save_checkpoint s "ck-old";
      D.save_checkpoint s "ck-new";
      D.kill s;
      (* corrupt the newest checkpoint file *)
      (match List.rev (ckpt_files dir) with
      | newest :: _ -> flip newest ((Unix.stat newest).Unix.st_size / 2)
      | [] -> Alcotest.fail "expected checkpoint files");
      let s2, r = open_str dir in
      Alcotest.(check int) "one dropped" 1 r.D.checkpoints_dropped;
      Alcotest.(check (option string)) "older checkpoint serves" (Some "ck-old")
        (D.latest_checkpoint s2);
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      D.kill s2)

let test_store_checkpoint_past_log_dropped () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      List.iter (D.append_volatile s) [ "a"; "b"; "c"; "d" ];
      ignore (D.flush s : int);
      D.save_checkpoint s "ck-at-4";
      D.kill s;
      (* lose most of the log: the checkpoint's saved position (4) now
         points past the recovered stable length *)
      (match seg_files dir with
      | [ seg ] ->
        let sz = (Unix.stat seg).Unix.st_size in
        chop seg (sz / 2)
      | _ -> Alcotest.fail "expected one segment");
      let s2, r = open_str dir in
      Alcotest.(check int) "checkpoint dropped" 1 r.D.checkpoints_dropped;
      Alcotest.(check (option string)) "no usable checkpoint" None
        (D.latest_checkpoint s2);
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      D.kill s2)

let test_store_sync_area_tail_truncated () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      D.log_announcement s "ann-1";
      D.set_incarnation s 1;
      D.log_announcement s "ann-2";
      D.kill s;
      chop (Filename.concat dir "sync.dat") 1;
      let s2, r = open_str dir in
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      Alcotest.(check bool) "tail bytes dropped" true (r.D.sync_bytes_dropped > 0);
      Alcotest.(check (list string)) "prefix of announcements" [ "ann-1" ]
        (D.announcements s2);
      Alcotest.(check int) "incarnation prefix" 1 (D.incarnation s2);
      D.kill s2)

let test_store_sync_area_missing () =
  with_dir (fun dir ->
      let s, _ = open_str dir in
      D.append_volatile s "a";
      ignore (D.flush s : int);
      D.set_incarnation s 3;
      D.kill s;
      Sys.remove (Filename.concat dir "sync.dat");
      let s2, r = open_str dir in
      Alcotest.(check bool) "loss detected" true r.D.sync_area_missing;
      Alcotest.(check bool) "damage reported" true (D.damaged r);
      Alcotest.(check int) "incarnation lost, not invented" 0 (D.incarnation s2);
      D.kill s2)

(* ------------------------------------------------------------------ *)
(* Node: kill, then a fresh node over the same directory *)

let quiet_counter_config () =
  let base = Util.counter_config ~k:2 ~n:4 () in
  { base with Config.timing = Util.quiet_timing }

let test_node_restart_from_disk () =
  with_dir (fun dir ->
      let config = quiet_counter_config () in
      let trace = Recovery.Trace.create () in
      let node =
        Node.create ~config ~pid:0 ~app:Counter.app ~store_dir:dir ?obs:None ~trace
      in
      for seq = 1 to 5 do
        ignore (Node.inject node ~now:(float_of_int seq) ~seq (Counter.Add seq))
      done;
      ignore (Node.flush node ~now:6.);
      ignore (Node.inject node ~now:7. ~seq:6 (Counter.Add 100));
      (* process death: the handle is gone; "Add 100" was volatile *)
      Node.halt node ~now:8.;
      let fresh =
        Node.create ~config ~pid:0 ~app:Counter.app ~store_dir:dir ?obs:None ~trace
      in
      Alcotest.(check bool) "fresh handle starts down" false (Node.is_up fresh);
      (match Node.storage_report fresh with
      | Some r ->
        Alcotest.(check bool) "reopen not fresh" false r.Storage.Stable_store.fresh;
        Alcotest.(check bool) "clean store" false
          (Storage.Stable_store.report_damaged r)
      | None -> Alcotest.fail "durable node must have a storage report");
      ignore (Node.restart fresh ~now:10.);
      Alcotest.(check bool) "up after restart" true (Node.is_up fresh);
      let st : Counter.state = Node.app_state fresh in
      Alcotest.(check int) "flushed work replayed, volatile lost" 15 st.total;
      Alcotest.(check int) "restart counted" 1
        (Node.metrics fresh).Recovery.Metrics.restarts)

let test_node_halt_requires_durable_store () =
  let config = quiet_counter_config () in
  let trace = Recovery.Trace.create () in
  let node =
    Node.create ~config ~pid:0 ~app:Counter.app ?store_dir:None ?obs:None ~trace
  in
  Alcotest.check_raises "halt on in-memory node"
    (Invalid_argument "Node.halt: only a node with a durable store can be killed")
    (fun () -> Node.halt node ~now:1.)

(* ------------------------------------------------------------------ *)
(* Cluster: kill + respawn mid-run, certified by the causality oracle *)

let test_cluster_kill_respawn_certified () =
  let root = Durable.Temp.fresh_dir ~prefix:"test-cluster-kill" () in
  Fun.protect
    ~finally:(fun () -> Durable.Temp.rm_rf root)
    (fun () ->
      let n = 4 in
      let config = Config.harden (Config.k_optimistic ~n ~k:2 ()) in
      let cluster =
        Harness.Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:5
          ~horizon:1500. ~store_root:root ()
      in
      let rng = Sim.Rng.create 99 in
      Harness.Workload.telecom cluster ~rng ~calls:20 ~hops:3 ~start:10. ~rate:1.0;
      Harness.Cluster.kill_at cluster ~time:50. ~pid:1 ();
      Harness.Cluster.run cluster;
      let oracle = Harness.Oracle.check ~k:2 ~n (Harness.Cluster.trace cluster) in
      if not (Harness.Oracle.ok oracle) then
        Alcotest.failf "kill+respawn run not certified: %a" Harness.Oracle.pp_report
          oracle;
      (match Harness.Cluster.storage_reports cluster with
      | [ (pid, time, note, report) ] ->
        Alcotest.(check int) "respawned pid" 1 pid;
        Alcotest.(check bool) "after restart delay" true (time > 50.);
        Alcotest.(check string) "no injected damage" "none" note;
        Alcotest.(check bool) "recovered from pre-existing files" false
          report.Storage.Stable_store.fresh;
        Alcotest.(check bool) "clean recovery" false
          (Storage.Stable_store.report_damaged report)
      | reports ->
        Alcotest.failf "expected exactly one respawn, got %d" (List.length reports));
      let stats = Harness.Cluster.stats cluster in
      Alcotest.(check bool) "the kill actually restarted a node" true
        (stats.Harness.Cluster.restarts >= 1))

let test_cluster_kill_with_damage_is_loud () =
  (* Torn write on top of the kill: the run must either stay certified or
     report the damage — an oracle violation with a clean storage report
     would be silent wrong state. *)
  let root = Durable.Temp.fresh_dir ~prefix:"test-cluster-torn" () in
  Fun.protect
    ~finally:(fun () -> Durable.Temp.rm_rf root)
    (fun () ->
      let n = 4 in
      let config = Config.harden (Config.k_optimistic ~n ~k:2 ()) in
      let cluster =
        Harness.Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:7
          ~horizon:1500. ~store_root:root ()
      in
      let rng = Sim.Rng.create 77 in
      Harness.Workload.telecom cluster ~rng ~calls:20 ~hops:3 ~start:10. ~rate:1.0;
      Harness.Cluster.kill_at cluster ~time:50. ~pid:1
        ~storage_fault:Durable.Fault.Torn_final_write ();
      Harness.Cluster.run cluster;
      let oracle = Harness.Oracle.check ~k:2 ~n (Harness.Cluster.trace cluster) in
      let damage_reported =
        List.exists
          (fun (_, _, note, report) ->
            note <> "none" || Storage.Stable_store.report_damaged report)
          (Harness.Cluster.storage_reports cluster)
      in
      Alcotest.(check bool) "fault injection recorded" true damage_reported;
      if not (Harness.Oracle.ok oracle) then
        Alcotest.(check bool) "violations only with reported damage" true
          damage_reported)

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec anomalies" `Quick test_codec_anomalies;
    Alcotest.test_case "codec scan stops at torn tail" `Quick
      test_codec_scan_stops_at_torn_tail;
    Alcotest.test_case "segment rotation + reopen" `Quick
      test_segment_rotation_and_reopen;
    Alcotest.test_case "segment kill drops unsynced" `Quick
      test_segment_kill_drops_unsynced;
    Alcotest.test_case "segment boundary gap detected" `Quick
      test_segment_boundary_gap_detected;
    Alcotest.test_case "segment truncate + compaction" `Quick
      test_segment_truncate_and_compact;
    Alcotest.test_case "store reopen round-trip" `Quick test_store_reopen_roundtrip;
    Alcotest.test_case "store torn tail truncated" `Quick
      test_store_torn_tail_truncated;
    Alcotest.test_case "store bit flip never yields a wrong record" `Quick
      test_store_bit_flip_never_wrong_record;
    Alcotest.test_case "store failing fsync detected" `Quick
      test_store_failing_fsync_detected;
    Alcotest.test_case "store group commit coalesces concurrent flushes" `Quick
      test_store_group_commit_coalesces;
    Alcotest.test_case "store corrupt checkpoint dropped" `Quick
      test_store_corrupt_checkpoint_dropped;
    Alcotest.test_case "store checkpoint past log dropped" `Quick
      test_store_checkpoint_past_log_dropped;
    Alcotest.test_case "store sync-area tail truncated" `Quick
      test_store_sync_area_tail_truncated;
    Alcotest.test_case "store sync-area missing" `Quick test_store_sync_area_missing;
    Alcotest.test_case "node restarts from disk" `Quick test_node_restart_from_disk;
    Alcotest.test_case "node halt requires durable store" `Quick
      test_node_halt_requires_durable_store;
    Alcotest.test_case "cluster kill+respawn certified" `Slow
      test_cluster_kill_respawn_certified;
    Alcotest.test_case "cluster kill with damage is loud" `Slow
      test_cluster_kill_with_damage_is_loud;
  ]
