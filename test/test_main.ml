let () =
  Alcotest.run "koptlog"
    [
      ("rng", Test_rng.suite);
      ("heap+queue", Test_heap.suite);
      ("summary", Test_summary.suite);
      ("entry", Test_entry.suite);
      ("entry-set", Test_entry_set.suite);
      ("dep-vector", Test_dep_vector.suite);
      ("storage", Test_storage.suite);
      ("durable", Test_durable.suite);
      ("apps", Test_apps.suite);
      ("node", Test_node.suite);
      ("node-edge", Test_node_edge.suite);
      ("config", Test_config.suite);
      ("gc", Test_gc.suite);
      ("direct-tracking", Test_direct.suite);
      ("bank-conservation", Test_bank.suite);
      ("fuzz", Test_fuzz.suite);
      ("actor-runtime", Test_runtime.suite);
      ("harness-bits", Test_harness_bits.suite);
      ("oracle", Test_oracle.suite);
      ("cluster", Test_cluster.suite);
      ("figure1", Test_figure1.suite);
      ("explore", Test_explore.suite);
      ("corpus", Test_corpus.suite);
      ("integration", Test_integration.suite);
      ("recovery-fast", Test_recovery_fast.suite);
      ("churn", Test_churn.suite);
      ("obs", Test_obs.suite);
      ("net-codec", Test_net_codec.suite);
      ("net-deployment", Test_net.suite);
      ("shardkv", Test_shardkv.suite);
    ]
