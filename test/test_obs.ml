(* Laws for the observability core: histogram quantile estimates are
   bounded by the recorded extremes, the snapshot merge algebra is
   associative/commutative with counter sums exact, and the text
   exposition round-trips through its parser.  Snapshots can only be
   built through a registry, so the generators produce little metric
   programs and run them. *)

open Util

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

open QCheck2.Gen

(* Label values get the characters the escaper must handle. *)
let gen_label_value =
  string_size ~gen:(oneofl [ 'a'; 'z'; '"'; '\\'; '\n'; ' '; '{'; '}'; '='; ',' ])
    (int_bound 6)

let gen_labels =
  let lab name = opt (map (fun v -> (name, v)) gen_label_value) in
  map2 (fun a b -> List.filter_map Fun.id [ a; b ]) (lab "phase") (lab "shard")

(* Observations spanning the bucket range, including exact powers of
   two, zero and sub-nanosecond underflow. *)
let gen_obs_value =
  oneof
    [
      map2
        (fun m e -> (0.001 +. m) *. Float.ldexp 1.0 e)
        (float_bound_inclusive 1.) (int_range (-35) 9);
      map (fun e -> Float.ldexp 1.0 e) (int_range (-35) 9);
      return 0.;
    ]

let gen_obs_list = list_size (int_range 1 30) gen_obs_value

(* A metric program: names come from a fixed pool with a fixed kind per
   name, so any two generated snapshots agree on kinds and overlap. *)
type spec =
  | SC of string * (string * string) list * int
  | SG of string * (string * string) list * float
  | SH of string * (string * string) list * float list

let gen_spec_item =
  oneof
    [
      map3 (fun n ls v -> SC (n, ls, v)) (oneofl [ "c_one"; "c_two" ]) gen_labels (int_bound 1000);
      map3 (fun n ls v -> SG (n, ls, v)) (oneofl [ "g_one" ]) gen_labels (float_bound_inclusive 50.);
      map3 (fun n ls vs -> SH (n, ls, vs)) (oneofl [ "h_one"; "h_two" ]) gen_labels gen_obs_list;
    ]

let gen_spec = list_size (int_bound 8) gen_spec_item

let build spec =
  let reg = Obs.Registry.create () in
  List.iter
    (function
      | SC (n, labels, v) -> Obs.Counter.add (Obs.Registry.counter reg ~labels n) v
      | SG (n, labels, v) -> Obs.Gauge.add (Obs.Registry.gauge reg ~labels n) v
      | SH (n, labels, vs) ->
        let h = Obs.Registry.histogram reg ~labels n in
        List.iter (Obs.Histogram.observe h) vs)
    spec;
  Obs.Registry.snapshot reg

let keys_of spec =
  List.map (function SC (n, ls, _) | SG (n, ls, _) | SH (n, ls, _) -> (n, ls)) spec

(* ------------------------------------------------------------------ *)
(* Histogram laws                                                      *)

let test_quantile_bounded =
  qtest ~count:500 "histogram: quantile estimates bounded by recorded min/max"
    (tup2 gen_obs_list (list_size (int_range 1 5) (float_bound_inclusive 100.)))
    (fun (values, quantiles) ->
      let reg = Obs.Registry.create () in
      let h = Obs.Registry.histogram reg "h_law" in
      List.iter (Obs.Histogram.observe h) values;
      let snap = Obs.Registry.snapshot reg in
      match Obs.Snapshot.hist snap "h_law" with
      | None -> false
      | Some hist ->
        let lo = List.fold_left Float.min infinity values in
        let hi = List.fold_left Float.max neg_infinity values in
        hist.Obs.Snapshot.minv = lo
        && hist.Obs.Snapshot.maxv = hi
        && Obs.Snapshot.hist_count hist = List.length values
        && List.for_all
             (fun p ->
               match Obs.Snapshot.quantile hist p with
               | None -> false
               | Some est -> est >= lo && est <= hi)
             quantiles)

let test_quantile_empty () =
  let reg = Obs.Registry.create () in
  let _ = Obs.Registry.histogram reg "h_empty" in
  let snap = Obs.Registry.snapshot reg in
  match Obs.Snapshot.hist snap "h_empty" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some h ->
    Alcotest.(check bool) "empty quantile is None" true (Obs.Snapshot.quantile h 50. = None);
    Alcotest.(check int) "empty count" 0 (Obs.Snapshot.hist_count h)

(* ------------------------------------------------------------------ *)
(* Merge algebra                                                       *)

let seq = Obs.Snapshot.equal

let test_merge_commutative =
  qtest ~count:300 "merge: commutative" (tup2 gen_spec gen_spec) (fun (sa, sb) ->
      let a = build sa and b = build sb in
      seq (Obs.Snapshot.merge a b) (Obs.Snapshot.merge b a))

let test_merge_associative =
  qtest ~count:300 "merge: associative" (tup3 gen_spec gen_spec gen_spec)
    (fun (sa, sb, sc) ->
      let a = build sa and b = build sb and c = build sc in
      seq
        (Obs.Snapshot.merge a (Obs.Snapshot.merge b c))
        (Obs.Snapshot.merge (Obs.Snapshot.merge a b) c))

let test_merge_identity =
  qtest ~count:300 "merge: empty is the identity" gen_spec (fun s ->
      let a = build s in
      seq (Obs.Snapshot.merge a Obs.Snapshot.empty) a
      && seq (Obs.Snapshot.merge Obs.Snapshot.empty a) a)

let test_merge_counter_sums =
  qtest ~count:300 "merge: counter sums exact on every key"
    (tup2 gen_spec gen_spec)
    (fun (sa, sb) ->
      let a = build sa and b = build sb in
      let m = Obs.Snapshot.merge a b in
      List.for_all
        (fun (name, labels) ->
          (not (String.length name > 1 && name.[0] = 'c'))
          || Obs.Snapshot.counter m ~labels name
             = Obs.Snapshot.counter a ~labels name + Obs.Snapshot.counter b ~labels name)
        (keys_of sa @ keys_of sb))

let test_merge_kind_clash () =
  let a =
    let reg = Obs.Registry.create () in
    Obs.Counter.incr (Obs.Registry.counter reg "clash");
    Obs.Registry.snapshot reg
  in
  let b =
    let reg = Obs.Registry.create () in
    Obs.Gauge.set (Obs.Registry.gauge reg "clash") 1.;
    Obs.Registry.snapshot reg
  in
  Alcotest.check_raises "kind clash raises"
    (Invalid_argument "Obs.Snapshot.merge: kind clash on \"clash\"") (fun () ->
      ignore (Obs.Snapshot.merge a b : Obs.Snapshot.t))

(* ------------------------------------------------------------------ *)
(* Exposition round trip                                               *)

let test_exposition_roundtrip =
  qtest ~count:500 "exposition: of_text inverts to_text" gen_spec (fun s ->
      let snap = build s in
      match Obs.Snapshot.of_text (Obs.Snapshot.to_text snap) with
      | Ok snap' -> seq snap snap'
      | Error _ -> false)

let test_exposition_rejects () =
  let reject what text =
    match Obs.Snapshot.of_text text with
    | Ok _ -> Alcotest.failf "parser accepted %s" what
    | Error _ -> ()
  in
  reject "a missing header" "# TYPE x counter\nx 1\n";
  reject "an untyped sample" "# koptlog-obs v1\nmystery 4\n";
  reject "a malformed value" "# koptlog-obs v1\n# TYPE x counter\nx one\n";
  reject "an unterminated label set" "# koptlog-obs v1\n# TYPE x counter\nx{a=\"v\" 1\n";
  reject "a histogram without +Inf"
    "# koptlog-obs v1\n# TYPE h histogram\nh_sum 1.0\nh_count 1\nh_min 1.0\nh_max 1.0\n";
  reject "a non-monotone bucket cumulative"
    (String.concat "\n"
       [
         "# koptlog-obs v1";
         "# TYPE h histogram";
         Printf.sprintf "h_bucket{le=\"%.12g\"} 5" (Obs.Histogram.bound 31);
         Printf.sprintf "h_bucket{le=\"%.12g\"} 3" (Obs.Histogram.bound 32);
         "h_bucket{le=\"+Inf\"} 5";
         "h_sum 1.0";
         "h_count 5";
         "h_min 1.0";
         "h_max 1.0";
         "";
       ]);
  (* Stray comments are fine. *)
  match Obs.Snapshot.of_text "# koptlog-obs v1\n# a note\n# TYPE x counter\nx 1\n" with
  | Ok snap -> Alcotest.(check int) "comment skipped, sample kept" 1 (Obs.Snapshot.counter snap "x")
  | Error e -> Alcotest.failf "comment broke the parser: %s" e

let test_registry_guards () =
  let reg = Obs.Registry.create () in
  let _ = Obs.Registry.histogram reg "lat_seconds" in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s was not rejected" what
  in
  expect_invalid "suffix collision" (fun () -> Obs.Registry.counter reg "lat_seconds_sum");
  expect_invalid "kind clash" (fun () -> Obs.Registry.gauge reg "lat_seconds");
  expect_invalid "bad name" (fun () -> Obs.Registry.counter reg "no spaces");
  expect_invalid "reserved le label" (fun () ->
      Obs.Registry.histogram reg ~labels:[ ("le", "x") ] "other");
  (* get-or-create: same key twice is the same cell *)
  let c1 = Obs.Registry.counter reg ~labels:[ ("a", "1") ] "hits_total" in
  let c2 = Obs.Registry.counter reg ~labels:[ ("a", "1") ] "hits_total" in
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  Alcotest.(check int) "one cell behind one key" 2 (Obs.Counter.value c1)

let test_collect_hook () =
  let reg = Obs.Registry.create () in
  let external_count = ref 0 in
  let mirrored = Obs.Registry.counter reg "mirrored_total" in
  Obs.Registry.on_collect reg (fun () -> Obs.Counter.set mirrored !external_count);
  external_count := 7;
  let snap = Obs.Registry.snapshot reg in
  Alcotest.(check int) "hook ran before collection" 7
    (Obs.Snapshot.counter snap "mirrored_total")

let suite =
  [
    test_quantile_bounded;
    Alcotest.test_case "empty histogram has no quantile" `Quick test_quantile_empty;
    test_merge_commutative;
    test_merge_associative;
    test_merge_identity;
    test_merge_counter_sums;
    Alcotest.test_case "merge rejects kind clashes" `Quick test_merge_kind_clash;
    test_exposition_roundtrip;
    Alcotest.test_case "exposition parser rejects malformed text" `Quick
      test_exposition_rejects;
    Alcotest.test_case "registry guards names, kinds and labels" `Quick
      test_registry_guards;
    Alcotest.test_case "collect hooks bridge external counters" `Quick test_collect_hook;
  ]
