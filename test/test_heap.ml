(* Binary heap and event queue. *)

let test_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Sim.Heap.pop h)

let test_pop_exn_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h))

let test_sorted_order =
  Util.qtest "pops in sorted order" QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let test_length =
  Util.qtest "length tracks pushes" QCheck2.Gen.(list_size (int_bound 50) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      Sim.Heap.length h = List.length xs)

let test_interleaved () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Sim.Heap.push h 5;
  Sim.Heap.push h 1;
  Alcotest.(check (option int)) "min" (Some 1) (Sim.Heap.pop h);
  Sim.Heap.push h 3;
  Sim.Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 3) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 5) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Sim.Heap.pop h)

let test_to_list_preserves =
  Util.qtest "to_list holds all elements" QCheck2.Gen.(list_size (int_bound 50) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      List.sort compare (Sim.Heap.to_list h) = List.sort compare xs)

let test_clear () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  Sim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Sim.Heap.is_empty h)

(* A popped payload must become unreachable: the heap used to keep dead
   elements alive through vacated array slots (and through the spare
   capacity [grow] filled with copies of the pushed element), pinning
   arbitrarily large event payloads for the life of the queue. *)
let test_pop_releases_payload () =
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let weak = Weak.create 1 in
  (* No closure below mentions the payload, so only the heap roots it. *)
  let () =
    let payload = Bytes.create 4096 in
    Weak.set weak 0 (Some payload);
    Sim.Heap.push h (1, payload)
  in
  Sim.Heap.push h (2, Bytes.create 8);
  Alcotest.(check bool) "payload live while heaped" true
    (Gc.full_major ();
     Weak.check weak 0);
  (match Sim.Heap.pop h with
  | Some (k, _) -> Alcotest.(check int) "popped min" 1 k
  | None -> Alcotest.fail "expected an element");
  Gc.full_major ();
  Alcotest.(check bool) "payload collectable once popped" false (Weak.check weak 0)

let test_clear_releases_payload () =
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let weak = Weak.create 1 in
  let () =
    let payload = Bytes.create 4096 in
    Weak.set weak 0 (Some payload);
    Sim.Heap.push h (1, payload)
  in
  Sim.Heap.clear h;
  Gc.full_major ();
  Alcotest.(check bool) "payload collectable once cleared" false (Weak.check weak 0)

(* Event queue *)

let test_queue_time_order () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.schedule q ~time:3. "c";
  Sim.Event_queue.schedule q ~time:1. "a";
  Sim.Event_queue.schedule q ~time:2. "b";
  Alcotest.(check (option (pair (float 0.0) string)))
    "first" (Some (1., "a")) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "second" (Some (2., "b")) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "third" (Some (3., "c")) (Sim.Event_queue.next q)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.schedule q ~time:1. "first";
  Sim.Event_queue.schedule q ~time:1. "second";
  Sim.Event_queue.schedule q ~time:1. "third";
  let order =
    List.init 3 (fun _ ->
        match Sim.Event_queue.next q with Some (_, s) -> s | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_queue_rejects_bad_times () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Event_queue.schedule: time must be finite and non-negative")
    (fun () -> Sim.Event_queue.schedule q ~time:(-1.) ());
  Alcotest.check_raises "nan"
    (Invalid_argument "Event_queue.schedule: time must be finite and non-negative")
    (fun () -> Sim.Event_queue.schedule q ~time:Float.nan ())

let test_queue_drain () =
  let q = Sim.Event_queue.create () in
  List.iter (fun (t, v) -> Sim.Event_queue.schedule q ~time:t v)
    [ (1., 1); (2., 2); (3., 3); (4., 4) ];
  Sim.Event_queue.drain q ~keep:(fun (_, v) -> v mod 2 = 0);
  Alcotest.(check int) "two survive" 2 (Sim.Event_queue.length q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "order preserved" (Some (2., 2)) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "order preserved" (Some (4., 4)) (Sim.Event_queue.next q)

let test_queue_peek_time () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Sim.Event_queue.peek_time q);
  Sim.Event_queue.schedule q ~time:5. ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.) (Sim.Event_queue.peek_time q);
  Alcotest.(check int) "peek does not remove" 1 (Sim.Event_queue.length q)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty" `Quick test_pop_exn_empty;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    test_sorted_order;
    test_length;
    test_to_list_preserves;
    Alcotest.test_case "pop releases payload" `Quick test_pop_releases_payload;
    Alcotest.test_case "clear releases payload" `Quick test_clear_releases_payload;
    Alcotest.test_case "queue time order" `Quick test_queue_time_order;
    Alcotest.test_case "queue FIFO on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue rejects bad times" `Quick test_queue_rejects_bad_times;
    Alcotest.test_case "queue drain" `Quick test_queue_drain;
    Alcotest.test_case "queue peek_time" `Quick test_queue_peek_time;
  ]
