(* Binary heap and event queue. *)

let test_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Sim.Heap.pop h)

let test_pop_exn_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h))

let test_sorted_order =
  Util.qtest "pops in sorted order" QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let test_length =
  Util.qtest "length tracks pushes" QCheck2.Gen.(list_size (int_bound 50) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      Sim.Heap.length h = List.length xs)

let test_interleaved () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Sim.Heap.push h 5;
  Sim.Heap.push h 1;
  Alcotest.(check (option int)) "min" (Some 1) (Sim.Heap.pop h);
  Sim.Heap.push h 3;
  Sim.Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 3) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "then" (Some 5) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Sim.Heap.pop h)

let test_to_list_preserves =
  Util.qtest "to_list holds all elements" QCheck2.Gen.(list_size (int_bound 50) int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.push h) xs;
      List.sort compare (Sim.Heap.to_list h) = List.sort compare xs)

let test_clear () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.push h) [ 3; 1; 2 ];
  Sim.Heap.clear h;
  Alcotest.(check bool) "cleared" true (Sim.Heap.is_empty h)

(* A popped payload must become unreachable: the heap used to keep dead
   elements alive through vacated array slots (and through the spare
   capacity [grow] filled with copies of the pushed element), pinning
   arbitrarily large event payloads for the life of the queue. *)
let test_pop_releases_payload () =
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let weak = Weak.create 1 in
  (* No closure below mentions the payload, so only the heap roots it. *)
  let () =
    let payload = Bytes.create 4096 in
    Weak.set weak 0 (Some payload);
    Sim.Heap.push h (1, payload)
  in
  Sim.Heap.push h (2, Bytes.create 8);
  Alcotest.(check bool) "payload live while heaped" true
    (Gc.full_major ();
     Weak.check weak 0);
  (match Sim.Heap.pop h with
  | Some (k, _) -> Alcotest.(check int) "popped min" 1 k
  | None -> Alcotest.fail "expected an element");
  Gc.full_major ();
  Alcotest.(check bool) "payload collectable once popped" false (Weak.check weak 0)

let test_clear_releases_payload () =
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let weak = Weak.create 1 in
  let () =
    let payload = Bytes.create 4096 in
    Weak.set weak 0 (Some payload);
    Sim.Heap.push h (1, payload)
  in
  Sim.Heap.clear h;
  Gc.full_major ();
  Alcotest.(check bool) "payload collectable once cleared" false (Weak.check weak 0)

(* Event queue *)

let test_queue_time_order () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.schedule q ~time:3. "c";
  Sim.Event_queue.schedule q ~time:1. "a";
  Sim.Event_queue.schedule q ~time:2. "b";
  Alcotest.(check (option (pair (float 0.0) string)))
    "first" (Some (1., "a")) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "second" (Some (2., "b")) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) string)))
    "third" (Some (3., "c")) (Sim.Event_queue.next q)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.schedule q ~time:1. "first";
  Sim.Event_queue.schedule q ~time:1. "second";
  Sim.Event_queue.schedule q ~time:1. "third";
  let order =
    List.init 3 (fun _ ->
        match Sim.Event_queue.next q with Some (_, s) -> s | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_queue_rejects_bad_times () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Event_queue.schedule: time must be finite and non-negative")
    (fun () -> Sim.Event_queue.schedule q ~time:(-1.) ());
  Alcotest.check_raises "nan"
    (Invalid_argument "Event_queue.schedule: time must be finite and non-negative")
    (fun () -> Sim.Event_queue.schedule q ~time:Float.nan ())

let test_queue_drain () =
  let q = Sim.Event_queue.create () in
  List.iter (fun (t, v) -> Sim.Event_queue.schedule q ~time:t v)
    [ (1., 1); (2., 2); (3., 3); (4., 4) ];
  Sim.Event_queue.drain q ~keep:(fun (_, v) -> v mod 2 = 0);
  Alcotest.(check int) "two survive" 2 (Sim.Event_queue.length q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "order preserved" (Some (2., 2)) (Sim.Event_queue.next q);
  Alcotest.(check (option (pair (float 0.0) int)))
    "order preserved" (Some (4., 4)) (Sim.Event_queue.next q)

(* Canonical pending order and positional removal: the scheduling choice
   points the model checker builds on. *)

let gen_feed =
  (* Times drawn from a tiny range so ties are common. *)
  QCheck2.Gen.(list_size (int_bound 40) (int_bound 3))

let feed q xs = List.iteri (fun i t -> Sim.Event_queue.schedule q ~time:(float_of_int t) i) xs

let pops q =
  let rec go acc =
    match Sim.Event_queue.next q with
    | None -> List.rev acc
    | Some cell -> go (cell :: acc)
  in
  go []

let test_pending_matches_pop_order =
  Util.qtest "pending lists exactly the pop order" gen_feed (fun xs ->
      let q = Sim.Event_queue.create () in
      let q' = Sim.Event_queue.create () in
      feed q xs;
      feed q' xs;
      List.map (fun (_, t, v) -> (t, v)) (Sim.Event_queue.pending q) = pops q')

let test_remove_nth_zero_is_next =
  Util.qtest "remove_nth 0 = next" gen_feed (fun xs ->
      let q = Sim.Event_queue.create () in
      let q' = Sim.Event_queue.create () in
      feed q xs;
      feed q' xs;
      let rec go () =
        let a = Sim.Event_queue.remove_nth q 0 in
        let b = Sim.Event_queue.next q' in
        a = b && (a = None || go ())
      in
      go ())

let test_remove_nth_middle () =
  let q = Sim.Event_queue.create () in
  feed q [ 2; 1; 1; 0 ];
  (* canonical order: (0.,3) (1.,1) (1.,2) (2.,0) *)
  Alcotest.(check (option (pair (float 0.0) int)))
    "removes the i-th of canonical order" (Some (1., 2))
    (Sim.Event_queue.remove_nth q 2);
  Alcotest.(check bool) "out of range" true (Sim.Event_queue.remove_nth q 3 = None);
  Alcotest.(check bool) "negative" true (Sim.Event_queue.remove_nth q (-1) = None);
  Alcotest.(check (list (pair (float 0.0) int)))
    "remaining order intact"
    [ (0., 3); (1., 1); (2., 0) ]
    (pops q)

(* Sequence numbers are the stable event identity the model checker keys
   its sleep sets on: they must survive both [drain] and positional
   removal, and identical feeds must assign identical numbers. *)
let test_seq_stable_identity () =
  let q = Sim.Event_queue.create () in
  feed q [ 1; 1; 1; 1; 1 ];
  let seq_of v =
    List.filter_map
      (fun (s, _, v') -> if v = v' then Some s else None)
      (Sim.Event_queue.pending q)
  in
  let before2 = seq_of 2 and before4 = seq_of 4 in
  Sim.Event_queue.drain q ~keep:(fun (_, v) -> v mod 2 = 0);
  Alcotest.(check (list int)) "seq survives drain" before2 (seq_of 2);
  ignore (Sim.Event_queue.remove_nth q 0);
  Alcotest.(check (list int)) "seq survives remove_nth" before4 (seq_of 4)

let test_identical_feeds_identical_schedules =
  Util.qtest "identical feeds give identical (seq, time, payload) tables" gen_feed
    (fun xs ->
      let q = Sim.Event_queue.create () in
      let q' = Sim.Event_queue.create () in
      feed q xs;
      feed q' xs;
      Sim.Event_queue.pending q = Sim.Event_queue.pending q')

let test_queue_peek_time () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty" None (Sim.Event_queue.peek_time q);
  Sim.Event_queue.schedule q ~time:5. ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.) (Sim.Event_queue.peek_time q);
  Alcotest.(check int) "peek does not remove" 1 (Sim.Event_queue.length q)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "pop_exn on empty" `Quick test_pop_exn_empty;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    test_sorted_order;
    test_length;
    test_to_list_preserves;
    Alcotest.test_case "pop releases payload" `Quick test_pop_releases_payload;
    Alcotest.test_case "clear releases payload" `Quick test_clear_releases_payload;
    Alcotest.test_case "queue time order" `Quick test_queue_time_order;
    Alcotest.test_case "queue FIFO on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue rejects bad times" `Quick test_queue_rejects_bad_times;
    Alcotest.test_case "queue drain" `Quick test_queue_drain;
    Alcotest.test_case "queue peek_time" `Quick test_queue_peek_time;
    test_pending_matches_pop_order;
    test_remove_nth_zero_is_next;
    Alcotest.test_case "remove_nth picks canonical position" `Quick
      test_remove_nth_middle;
    Alcotest.test_case "seq numbers survive drain and removal" `Quick
      test_seq_stable_identity;
    test_identical_feeds_identical_schedules;
  ]
