(* Membership churn and degraded modes, simulator side:

   - scripted cluster scenarios: join under load, retire + rejoin,
     rolling restart, disk-full brownout, and a long partition with the
     minority still logging — every run oracle-certified at the final
     membership width with risk at most K;
   - Driver-level Join/Retire handshake: vector widening, frontier
     adoption, un-retiring on rejoin;
   - QCheck law: identity-preserving vector resize ([Dep_vector.grow] /
     [shrink]) preserves every orphan verdict;
   - Part_ckpt decode hardening: random byte damage to the synchronous
     area never crashes a restart and never silently corrupts the
     recovered state, and a surgically damaged [pc_payload] (valid outer
     frames, broken inner seal) is dropped and counted. *)

module Cluster = Harness.Cluster
module Node = Recovery.Node
module Config = Recovery.Config
module Wire = Recovery.Wire
module Counter = App_model.Counter_app
module Entry = Depend.Entry
module Entry_set = Depend.Entry_set
module Dep_vector = Depend.Dep_vector
module D = Util.Driver

let certify ?(k = 2) c =
  let report = Harness.Oracle.check ~k ~n:(Cluster.n c) (Cluster.trace c) in
  Alcotest.(check (list string))
    "oracle certifies" [] report.Harness.Oracle.violations;
  Alcotest.(check bool)
    (Fmt.str "risk %d <= K=%d" report.Harness.Oracle.max_risk k)
    true
    (report.Harness.Oracle.max_risk <= k);
  report

let config ?(n = 3) ?(k = 2) () = Config.k_optimistic ~n ~k ()

let total c pid = (Node.app_state (Cluster.node c pid) : Counter.state).total

(* ------------------------------------------------------------------ *)
(* Scripted cluster scenarios                                          *)

let test_join_under_load () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:600. () in
  for i = 1 to 6 do
    Cluster.inject_at c ~time:(float_of_int i) ~dst:(i mod 3) (Counter.Add 1)
  done;
  Cluster.join_at c ~time:50. ~pid:3;
  (* Traffic at and through the joiner after its announcement lands. *)
  Cluster.inject_at c ~time:80. ~dst:3 (Counter.Add 5);
  Cluster.inject_at c ~time:90. ~dst:0 (Counter.Forward { dst = 3; amount = 2 });
  Cluster.run c;
  Alcotest.(check int) "membership grew" 4 (Cluster.n c);
  Alcotest.(check int) "joiner delivered its traffic" 7 (total c 3);
  (* The incumbents widened their protocol membership on the Join. *)
  Alcotest.(check int)
    "incumbent widened" 4
    (Node.membership_n (Cluster.node c 0));
  ignore (certify c : Harness.Oracle.report)

let test_retire_then_rejoin () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:900. () in
  for i = 1 to 6 do
    Cluster.inject_at c ~time:(float_of_int i) ~dst:(i mod 3) (Counter.Add 1)
  done;
  Cluster.retire_at c ~time:60. ~pid:2;
  (* Survivor traffic while P2 is gone; the wire eats anything sent its
     way, and survivors treat its frontier as stable (Theorem 2), so
     nothing blocks on the retiree. *)
  Cluster.inject_at c ~time:100. ~dst:0 (Counter.Add 3);
  Cluster.inject_at c ~time:110. ~dst:1 (Counter.Add 4);
  Cluster.run_until c 200.;
  Alcotest.(check (list int)) "P2 retired" [ 2 ] (Cluster.retired c);
  Alcotest.(check bool)
    "survivors saw the frontier" true
    (Node.is_retired (Cluster.node c 0) 2);
  (* Rejoin under the same identity: cleared from the retired set, fresh
     incarnation over the same store, deliverable again. *)
  Cluster.join_at c ~time:250. ~pid:2;
  Cluster.inject_at c ~time:300. ~dst:2 (Counter.Add 9);
  Cluster.run c;
  Alcotest.(check (list int)) "no longer retired" [] (Cluster.retired c);
  Alcotest.(check bool)
    "un-retired at the survivors" false
    (Node.is_retired (Cluster.node c 0) 2);
  (* 2 from its pre-retire history (recovered from its own log) + 9. *)
  Alcotest.(check int) "rejoined node delivers" 11 (total c 2);
  ignore (certify c : Harness.Oracle.report)

let test_rolling_restart () =
  let c = Cluster.create ~config:(config ~n:4 ()) ~app:Counter.app ~horizon:1500. () in
  for i = 1 to 12 do
    Cluster.inject_at c ~time:(float_of_int i) ~dst:(i mod 4) (Counter.Add 1)
  done;
  Cluster.rolling_restart_at c ~time:100. ~pids:[ 0; 1; 2; 3 ] ();
  (* Load keeps flowing while the wave rolls through. *)
  for i = 0 to 3 do
    Cluster.inject_at c ~time:(120. +. (40. *. float_of_int i)) ~dst:i (Counter.Add 1)
  done;
  Cluster.run c;
  Alcotest.(check int) "all four restarted" 4 (Cluster.stats c).restarts;
  Alcotest.(check int)
    "nothing lost across the wave" 16
    (total c 0 + total c 1 + total c 2 + total c 3);
  ignore (certify c : Harness.Oracle.report)

let test_disk_full_brownout () =
  (* No periodic checkpoints: a checkpoint's forced flush (exempt from
     the brownout by design — stability claims must stay true) would
     drain the backlog early and cut the refusal count short. *)
  let timing = { Config.default_timing with checkpoint_interval = None } in
  let c =
    Cluster.create
      ~config:(Config.k_optimistic ~timing ~n:3 ~k:2 ())
      ~app:Counter.app ~horizon:900. ()
  in
  Cluster.inject_at c ~time:1. ~dst:0 (Counter.Add 1);
  Cluster.arm_disk_full_at c ~time:20. ~pid:0 ~rounds:3;
  (* Traffic into the browned-out node: refused flushes keep its records
     volatile and the K-rule gates its sends until the window passes. *)
  for i = 0 to 5 do
    Cluster.inject_at c ~time:(25. +. (2. *. float_of_int i)) ~dst:0 (Counter.Add 1)
  done;
  Cluster.run c;
  Alcotest.(check bool)
    "degradation reported" true
    (Node.storage_degraded_flushes (Cluster.node c 0) >= 3);
  Alcotest.(check int) "no delivery dropped" 7 (total c 0);
  ignore (certify c : Harness.Oracle.report)

let test_long_partition_minority_logging () =
  (* P0 alone on one side of a dropping cut for 300 time units — an order
     of magnitude beyond any timer period — while clients keep it busy:
     the minority logs locally throughout, and after healing the
     retransmission timer reconciles both sides with no orphan escaping
     the oracle. *)
  let timing =
    { Config.default_timing with retransmit_interval = Some 40. }
  in
  let plan =
    {
      Harness.Netmodel.benign with
      partitions =
        [
          {
            Harness.Netmodel.group = [ 0 ];
            from_ = 50.;
            until = 350.;
            mode = Harness.Netmodel.Drop_packets;
          };
        ];
    }
  in
  let c =
    Cluster.create
      ~config:(Config.k_optimistic ~timing ~n:3 ~k:2 ())
      ~app:Counter.app ~horizon:1200. ~fault_plan:plan ()
  in
  for i = 1 to 4 do
    Cluster.inject_at c ~time:(float_of_int i) ~dst:(i mod 3) (Counter.Add 1)
  done;
  (* Minority keeps logging mid-partition; the majority does too. *)
  for i = 0 to 4 do
    let t = 80. +. (40. *. float_of_int i) in
    Cluster.inject_at c ~time:t ~dst:0 (Counter.Add 1);
    Cluster.inject_at c ~time:(t +. 5.) ~dst:1 (Counter.Forward { dst = 2; amount = 1 })
  done;
  Cluster.run c;
  let faults = (Cluster.stats c).net_faults in
  Alcotest.(check bool)
    "the cut actually dropped traffic" true
    (faults.Harness.Netmodel.partition_dropped > 0);
  Alcotest.(check int) "minority delivered everything it was sent" 6 (total c 0);
  Alcotest.(check int) "majority side reconciled" 6 (total c 2);
  ignore (certify c : Harness.Oracle.report)

(* ------------------------------------------------------------------ *)
(* Driver-level Join/Retire handshake                                  *)

let test_handshake_widens_and_adopts () =
  let d = D.make (Util.counter_config ~n:2 ~k:2 ()) Counter.app in
  Alcotest.(check int) "launch width" 2 (Node.membership_n d.D.node);
  (* A Join from a process that counts itself as the 4th member widens
     the local view and adopts its current interval as stable. *)
  let e3 = Util.e ~inc:0 ~sii:1 in
  D.packet d (Wire.Join { from_ = 3; n = 4; current = e3 });
  Alcotest.(check int) "widened to the joiner's view" 4
    (Node.membership_n d.D.node);
  (* The handshake replies with a Notice handing over local stability. *)
  let notices =
    List.filter
      (function
        | Recovery.Node.Unicast { dst = 3; packet = Wire.Notice _; _ } -> true
        | _ -> false)
      (D.actions d)
  in
  Alcotest.(check int) "stability handed to the joiner" 1 (List.length notices);
  (* Retire records the frontier; a later Join under the same pid clears
     it (rejoin-after-retire). *)
  let upto = Util.e ~inc:1 ~sii:7 in
  D.packet d (Wire.Retire { from_ = 1; upto });
  Alcotest.(check bool) "retiree marked" true (Node.is_retired d.D.node 1);
  Alcotest.(check (option Util.entry))
    "frontier recorded" (Some upto)
    (Node.retired_frontier d.D.node 1);
  D.packet d (Wire.Join { from_ = 1; n = 2; current = upto });
  Alcotest.(check bool) "rejoin clears retirement" false
    (Node.is_retired d.D.node 1)

(* ------------------------------------------------------------------ *)
(* QCheck law: resize preserves orphan verdicts                        *)

(* The orphan verdict of Check_orphan is per-slot: a vector [v] is
   orphaned by announcement tables [iet] iff some non-NULL entry [(j, e)]
   has [Entry_set.orphans iet.(j) e].  [grow] adds only NULL slots and
   [shrink] removes only NULL slots, so the verdict must be identical
   against any table extension. *)
let gen_resize_case =
  QCheck2.Gen.(
    let entry = Util.gen_entry in
    triple
      (* width and per-slot optional entries *)
      (int_range 1 6 >>= fun n ->
       list_repeat n (opt entry) >|= fun slots -> (n, slots))
      (* announcement tables: per-slot entry lists (endings) *)
      (list_size (int_range 0 8) (pair (int_bound 9) entry))
      (int_range 0 4) (* extra width *))

let orphaned v iet_n iet =
  List.exists
    (fun (j, e) -> j < iet_n && Entry_set.orphans iet.(j) e)
    (Dep_vector.non_null v)

let law_resize_preserves_verdicts =
  Util.qtest ~count:300 "grow/shrink preserve orphan verdicts"
    gen_resize_case
    (fun ((n, slots), anns, extra) ->
      let v = Dep_vector.create ~n in
      List.iteri (fun j s -> Dep_vector.set v j s) slots;
      let wide = n + extra in
      let iet = Array.make wide Entry_set.empty in
      List.iter
        (fun (j, e) ->
          let j = j mod wide in
          iet.(j) <- Entry_set.insert iet.(j) e)
        anns;
      let verdict_before = orphaned v n iet in
      (* Growth: same verdict against the same tables, now consulted at
         full width. *)
      let g = Dep_vector.grow v ~n:wide in
      let verdict_grown = orphaned g wide iet in
      (* Shrink back down to the smallest width covering the non-NULL
         entries: only NULL slots are dropped, verdict unchanged. *)
      let live_width =
        List.fold_left
          (fun acc (j, _) -> Stdlib.max acc (j + 1))
          1 (Dep_vector.non_null v)
      in
      let s = Dep_vector.shrink g ~n:live_width in
      let verdict_shrunk = orphaned s live_width iet in
      Dep_vector.non_null g = Dep_vector.non_null v
      && Dep_vector.non_null s = Dep_vector.non_null v
      && verdict_grown = verdict_before
      && verdict_shrunk = verdict_before)

(* ------------------------------------------------------------------ *)
(* Part_ckpt decode hardening                                          *)

module App = App_model.Kvstore_app
module Codec = Durable.Codec

let kv_config () =
  Config.k_optimistic ~timing:Util.quiet_timing ~n:1 ~k:0 ()

let key_of i = Fmt.str "fz-%d" i

(* Build a node over [dir] with a replayable log and one Part_ckpt per
   dirty partition, then crash it.  Returns the expected per-partition
   digests (from an undamaged in-memory twin fed the same ops). *)
let build_store dir ops =
  let d = D.make ~store_dir:dir (kv_config ()) App.app in
  let twin = D.make (kv_config ()) App.app in
  List.iteri
    (fun i (ki, v) ->
      D.inject d ~seq:(i + 1) (App.Put { key = key_of ki; value = v });
      D.inject twin ~seq:(i + 1) (App.Put { key = key_of ki; value = v }))
    ops;
  D.flush d;
  D.flush twin;
  let rec snap n =
    if n > 0 then begin
      let did, _, _ = Node.partition_checkpoint d.D.node ~now:500. in
      if did then snap (n - 1)
    end
  in
  snap App.parts;
  D.crash d;
  D.crash twin;
  ignore (Node.restart twin.D.node ~now:1000. : _ list * _);
  (d, Array.init App.parts (Node.partition_digest twin.D.node))

let check_recovered_digests ~msg node expected =
  Array.iteri
    (fun p want ->
      Alcotest.(check (option int))
        (Fmt.str "%s: partition %d digest" msg p)
        want (Node.partition_digest node p))
    expected

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Random single-byte damage anywhere in the synchronous area (where the
   Part_ckpt records live): a restart over the damaged store must never
   raise, and must recover exactly the reference state — a damaged
   snapshot is dropped and its partition falls back to replaying the
   intact log, never silently accepted. *)
let gen_fuzz_case =
  QCheck2.Gen.(
    triple
      (list_size (int_range 4 24) (pair (int_bound 15) (int_bound 99)))
      (int_bound 100_000) (int_range 1 3))

let law_sync_damage_never_crashes =
  Util.qtest ~count:40 "Part_ckpt byte damage: no crash, no silent acceptance"
    gen_fuzz_case
    (fun (ops, at, flips) ->
      let dir = Durable.Temp.fresh_dir ~prefix:"churn-fuzz" () in
      Fun.protect
        ~finally:(fun () -> Durable.Temp.rm_rf dir)
        (fun () ->
          let d, expected = build_store dir ops in
          let sync = Filename.concat dir "sync.dat" in
          let contents = read_file sync in
          let len = String.length contents in
          if len > 0 then begin
            let b = Bytes.of_string contents in
            for i = 0 to flips - 1 do
              let off = (at + (31 * i)) mod len in
              Bytes.set b off
                (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (i mod 8))))
            done;
            write_file sync (Bytes.to_string b)
          end;
          (* The store handle is dead (crash closed it); recover over the
             damaged directory with a fresh node, exactly as a successor
             incarnation would. *)
          let d' = D.make ~store_dir:dir (kv_config ()) App.app in
          ignore (Node.restart d'.D.node ~now:1000. : _ list * _);
          check_recovered_digests ~msg:"fuzz" d'.D.node expected;
          ignore d;
          true))

(* Surgical inner damage: rewrite the sync area so every outer frame is
   valid (fresh CRCs) but one Part_ckpt's [pc_payload] seal is broken.
   The store-level open accepts the record; the node's unseal witness must
   reject the payload, drop the slot, count it, and fall back to replay —
   the exact no-silent-acceptance path of the decode hardening. *)
let test_inner_seal_damage_dropped () =
  let ops = List.init 12 (fun i -> (i, 10 + i)) in
  let dir = Durable.Temp.fresh_dir ~prefix:"churn-inner" () in
  Fun.protect
    ~finally:(fun () -> Durable.Temp.rm_rf dir)
    (fun () ->
      let d, expected = build_store dir ops in
      let sync = Filename.concat dir "sync.dat" in
      let scanned = Codec.scan (read_file sync) in
      Alcotest.(check bool) "sync area scans clean" true
        (scanned.Codec.tail = Codec.Clean);
      let damaged = ref 0 in
      let buf = Buffer.create 4096 in
      List.iter
        (fun (kind, payload) ->
          let payload =
            (* Only announcement-kind records ('A') hold marshalled
               [Wire.sync_record] values; the length/incarnation/base
               witnesses are marshalled ints, and reading one at a
               block-only variant type is memory-unsafe.  Re-marshal the
               first Part_ckpt with a corrupted inner payload, leaving
               both outer layers valid. *)
            if !damaged > 0 || kind <> Char.code 'A' then payload
            else
              match Codec.unseal payload with
              | Error _ -> payload
              | Ok bytes -> (
                match (Marshal.from_string bytes 0 : Wire.sync_record) with
                | Wire.Part_ckpt { pc_part; pc_pos; pc_payload } ->
                  incr damaged;
                  let b = Bytes.of_string pc_payload in
                  let off = Bytes.length b - 1 in
                  Bytes.set b off
                    (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
                  Codec.seal
                    (Marshal.to_string
                       (Wire.Part_ckpt
                          {
                            pc_part;
                            pc_pos;
                            pc_payload = Bytes.to_string b;
                          })
                       [ Marshal.Closures ])
                | _ -> payload
                | exception _ -> payload)
          in
          Codec.encode_into buf ~kind payload)
        scanned.Codec.records;
      Alcotest.(check int) "one Part_ckpt payload damaged" 1 !damaged;
      write_file sync (Buffer.contents buf);
      let d' = D.make ~store_dir:dir (kv_config ()) App.app in
      (* The partitioned restart is the path that consults Part_ckpt
         snapshots (the serial [restart] replays the whole log and never
         reads them), so it is the one that must witness the seal. *)
      ignore (Node.restart_begin d'.D.node ~now:1000. : _ list * _);
      let fuel = ref 10_000 in
      while Node.recovery_active d'.D.node do
        decr fuel;
        if !fuel = 0 then Alcotest.fail "replay made no progress";
        ignore
          (Node.replay_step d'.D.node ~now:1001. ~budget:8 ()
            : int * _ list * _)
      done;
      Alcotest.(check bool)
        "drop reported, not silent" true
        ((Node.metrics d'.D.node).Recovery.Metrics.part_ckpt_dropped >= 1);
      check_recovered_digests ~msg:"inner" d'.D.node expected;
      ignore d)

let suite =
  [
    Alcotest.test_case "join under load widens and certifies" `Quick
      test_join_under_load;
    Alcotest.test_case "retire then rejoin under the same identity" `Quick
      test_retire_then_rejoin;
    Alcotest.test_case "rolling restart loses nothing" `Quick
      test_rolling_restart;
    Alcotest.test_case "disk-full brownout degrades gracefully" `Quick
      test_disk_full_brownout;
    Alcotest.test_case "long partition with minority logging" `Quick
      test_long_partition_minority_logging;
    Alcotest.test_case "Join/Retire handshake widens, adopts, un-retires"
      `Quick test_handshake_widens_and_adopts;
    law_resize_preserves_verdicts;
    law_sync_damage_never_crashes;
    Alcotest.test_case "damaged Part_ckpt seal is dropped and counted" `Quick
      test_inner_seal_damage_dropped;
  ]
