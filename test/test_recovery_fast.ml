(* Fast-recovery unit + property tests, on a single node over the
   in-memory store (crash + restart on the same handle):

   - QCheck law: partitioned replay ([restart_begin] + [replay_step] in
     any preference order, any budgets) reaches the same per-partition
     digests as Figure 3's serial [restart], for any op sequence and any
     stability point at the crash.
   - QCheck law: a prefix captured by incremental [Part_ckpt] snapshots
     plus replay of the remainder equals one-shot replay of the whole log.
   - Scripted on-demand timeline: a Get for an already-replayed partition
     is answered while another partition is still replaying; a Get parked
     on an unrecovered partition is answered only after that partition's
     replay completes — from the replayed state, never the pre-crash
     (wiped) one. *)

module Node = Recovery.Node
module Trace = Recovery.Trace
module App = App_model.Kvstore_app
module D = Util.Driver

(* One process, K = 0, no timers: kvstore keys are all locally owned
   (owner hash mod 1), so every Put is one local log record and the
   recovery partitioning (the second, independent key hash) is the only
   sharding in play. *)
let config () = Recovery.Config.k_optimistic ~timing:Util.quiet_timing ~n:1 ~k:0 ()

let parts = App.parts

(* A small key pool with a known partition for each key. *)
let key_of i = Fmt.str "law-%d" i

let feed d ops ~flush_at =
  List.iteri
    (fun i (ki, v) ->
      D.inject d ~seq:(i + 1) (App.Put { key = key_of ki; value = v });
      if i + 1 = flush_at then D.flush d)
    ops

let drain_replay ?(rng = fun _ -> 0) node =
  let fuel = ref 10_000 in
  while Node.recovery_active node do
    decr fuel;
    if !fuel = 0 then Alcotest.fail "replay made no progress";
    let prefer = rng parts in
    let budget = 1 + rng 3 in
    ignore
      (Node.replay_step node ~now:2000. ~prefer ~budget () : int * _ list * _)
  done

let check_digests ~msg a b =
  for p = 0 to parts - 1 do
    Alcotest.(check (option int))
      (Fmt.str "%s: partition %d digest" msg p)
      (Node.partition_digest b p) (Node.partition_digest a p)
  done

(* Generator: an op sequence over a 24-key pool, a stability point (flush
   position) and a seed for the replay preference/budget walk. *)
let gen_case =
  QCheck2.Gen.(
    triple
      (list_size (int_range 1 40) (pair (int_bound 23) (int_bound 99)))
      (int_bound 40) (int_bound 1000))

let law_partitioned_eq_serial =
  Util.qtest ~count:80 "partitioned replay == serial replay (digests)" gen_case
    (fun (ops, flush_at, seed) ->
      let flush_at = min flush_at (List.length ops) in
      let a = D.make (config ()) App.app in
      let b = D.make (config ()) App.app in
      feed a ops ~flush_at;
      feed b ops ~flush_at;
      D.crash a;
      D.crash b;
      (* A: incremental, replayed in a seed-dependent preference order
         with small uneven budgets; B: Figure 3's serial restart. *)
      ignore (Node.restart_begin a.D.node ~now:1000. : _ list * _);
      let state = ref seed in
      let rng bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      drain_replay ~rng a.D.node;
      ignore (Node.restart b.D.node ~now:1000. : _ list * _);
      check_digests ~msg:"law1" a.D.node b.D.node;
      true)

let law_ckpt_prefix_eq_oneshot =
  Util.qtest ~count:80 "Part_ckpt prefix + remainder == one-shot replay" gen_case
    (fun (ops, split, seed) ->
      let split = min split (List.length ops) in
      let prefix = List.filteri (fun i _ -> i < split) ops in
      let rest = List.filteri (fun i _ -> i >= split) ops in
      let a = D.make (config ()) App.app in
      let b = D.make (config ()) App.app in
      (* A snapshots every dirty partition after the prefix; B never
         snapshots.  Same injects, same stability points on both. *)
      feed a prefix ~flush_at:split;
      feed b prefix ~flush_at:split;
      let rec snap n =
        if n > 0 then begin
          let did, _, _ = Node.partition_checkpoint a.D.node ~now:500. in
          if did then snap (n - 1)
        end
      in
      snap parts;
      List.iteri
        (fun i (ki, v) ->
          let seq = split + i + 1 in
          D.inject a ~seq (App.Put { key = key_of ki; value = v });
          D.inject b ~seq (App.Put { key = key_of ki; value = v }))
        rest;
      D.flush a;
      D.flush b;
      D.crash a;
      D.crash b;
      ignore (Node.restart_begin a.D.node ~now:1000. : _ list * _);
      let state = ref seed in
      let rng bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      drain_replay ~rng a.D.node;
      ignore (Node.restart b.D.node ~now:1000. : _ list * _);
      check_digests ~msg:"law2" a.D.node b.D.node;
      true)

(* ------------------------------------------------------------------ *)
(* Scripted on-demand timeline                                         *)

let committed_outputs trace =
  List.filter_map
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Output_committed { text; _ } -> Some text
      | _ -> None)
    (Trace.events trace)

let test_on_demand_timeline () =
  (* Two keys in different recovery partitions. *)
  let ka = key_of 0 in
  let pa = App.part_of_key ka in
  let kb =
    let rec find i =
      if App.part_of_key (key_of i) <> pa then key_of i else find (i + 1)
    in
    find 1
  in
  let pb = App.part_of_key kb in
  let d = D.make (config ()) App.app in
  D.inject d ~seq:1 (App.Put { key = ka; value = 5 });
  D.inject d ~seq:2 (App.Put { key = kb; value = 6 });
  D.inject d ~seq:3 (App.Put { key = ka; value = 7 });
  D.inject d ~seq:4 (App.Put { key = kb; value = 8 });
  D.flush d;
  D.crash d;
  ignore (Node.restart_begin d.D.node ~now:1000. : _ list * _);
  Alcotest.(check bool) "recovery active" true (Node.recovery_active d.D.node);
  Alcotest.(check int) "four records pending" 4 (Node.recovery_pending d.D.node);
  (* Replay exactly partition A (two records); B stays pending. *)
  let executed, _, _ =
    Node.replay_step d.D.node ~now:1001. ~prefer:pa ~budget:2 ()
  in
  Alcotest.(check int) "A's two records replayed" 2 executed;
  Alcotest.(check bool) "A recovered" true (Node.partition_recovered d.D.node pa);
  Alcotest.(check bool) "B not recovered" false
    (Node.partition_recovered d.D.node pb);
  (* A Get on the recovered partition is answered now — mid-recovery —
     and from the replayed state (v7, version 2). *)
  D.inject d ~seq:10 (App.Get ka);
  D.flush d;
  Alcotest.(check bool) "still recovering" true (Node.recovery_active d.D.node);
  Alcotest.(check (list string))
    "Get on recovered partition answered mid-replay"
    [ Fmt.str "get %s -> 7 (v2)" ka ]
    (committed_outputs d.D.trace);
  (* A Get on the unrecovered partition parks: no answer, not even a
     wrong one from the wiped pre-crash state. *)
  D.inject d ~seq:11 (App.Get kb);
  D.flush d;
  Alcotest.(check int) "parked in the receive buffer" 1
    (Node.receive_buffer_size d.D.node);
  Alcotest.(check (list string))
    "parked Get not answered"
    [ Fmt.str "get %s -> 7 (v2)" ka ]
    (committed_outputs d.D.trace);
  (* Finish B's replay: recovery completes, the parked Get drains and is
     answered from the replayed state. *)
  let executed, _, _ =
    Node.replay_step d.D.node ~now:1002. ~prefer:pb ~budget:100 ()
  in
  Alcotest.(check int) "B's two records replayed" 2 executed;
  Alcotest.(check bool) "recovery complete" false (Node.recovery_active d.D.node);
  D.flush d;
  Alcotest.(check (list string))
    "parked Get answered after its partition's replay"
    [ Fmt.str "get %s -> 7 (v2)" ka; Fmt.str "get %s -> 8 (v2)" kb ]
    (committed_outputs d.D.trace);
  let completed =
    List.exists
      (fun { Trace.ev; _ } ->
        match ev with Trace.Recovery_completed _ -> true | _ -> false)
      (Trace.events d.D.trace)
  in
  Alcotest.(check bool) "Recovery_completed traced" true completed

let suite =
  [
    law_partitioned_eq_serial;
    law_ckpt_prefix_eq_oneshot;
    Alcotest.test_case "on-demand timeline: serve early, park until replayed"
      `Quick test_on_demand_timeline;
  ]
