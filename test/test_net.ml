(* Multi-process deployment over real loopback TCP: fork koptnode daemons,
   drive a workload, SIGKILL one mid-run, and certify the merged trace with
   the causality oracle — the subsystem's end-to-end argument, exercised
   from the test suite at a small scale. *)

module Deployment = Net.Deployment
module App = App_model.Kvstore_app

let counter outcome name =
  try List.assoc name outcome.Deployment.counters with Not_found -> 0

(* Benign network (no proxy): the transport's own framing/reconnect path. *)
let test_cluster_benign () =
  let t = Deployment.launch ~n:3 ~k:1 ~seed:11 () in
  Deployment.run_workload t ~ops:30 ~seed:3;
  Alcotest.(check bool) "settles" true (Deployment.settle t);
  let outcome = Deployment.finish t in
  Alcotest.(check (list string)) "no trace damage" [] outcome.Deployment.damage;
  Alcotest.(check (list string))
    "oracle certifies" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  Alcotest.(check bool) "work happened" true (counter outcome "deliveries" > 0);
  Alcotest.(check int) "no crash synthesized" 0 outcome.Deployment.synthesized_crashes;
  (* Fault-free certification tightening: a benign network decodes every
     frame, and every daemon's graceful quit flushed first, so each wrote
     a clean [Crashed] (no lost interval) instead of leaving a torn tail. *)
  Deployment.check_fault_free outcome;
  let clean_quits =
    List.length
      (List.filter
         (fun { Recovery.Trace.ev; _ } ->
           match ev with
           | Recovery.Trace.Crashed { first_lost = None; _ } -> true
           | _ -> false)
         (Recovery.Trace.events outcome.Deployment.trace))
  in
  Alcotest.(check int) "every daemon quit cleanly" 3 clean_quits;
  Durable.Temp.rm_rf (Deployment.root t)

(* SIGKILL one daemon mid-workload; the respawned incarnation must recover
   from its durable store and the merge must synthesize the Crashed event
   the killed incarnation never wrote. *)
let test_cluster_kill () =
  let t = Deployment.launch ~n:3 ~k:3 ~seed:12 () in
  Deployment.run_workload t ~ops:24 ~seed:5;
  Deployment.kill t ~dst:1;
  Deployment.run_workload t ~ops:24 ~seed:6;
  ignore (Deployment.settle t : bool);
  let outcome = Deployment.finish t in
  Alcotest.(check (list string))
    "oracle certifies" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  Alcotest.(check int) "one synthesized crash" 1 outcome.Deployment.synthesized_crashes;
  Alcotest.(check bool) "restart recorded" true (counter outcome "restarts" >= 1);
  Durable.Temp.rm_rf (Deployment.root t)

(* The E14 smoke path (kill + proxy faults) is what CI runs; keep a tiny
   proxied run here so `dune runtest` covers the fault-injection relay. *)
let test_cluster_proxy () =
  let plan =
    {
      Harness.Netmodel.benign with
      Harness.Netmodel.loss = 0.05;
      duplicate = 0.05;
      reorder = 0.05;
      reorder_spread = 3.;
    }
  in
  let t = Deployment.launch ~n:2 ~k:2 ~plan ~seed:13 () in
  Deployment.run_workload t ~ops:30 ~seed:9;
  ignore (Deployment.settle t : bool);
  let outcome = Deployment.finish t in
  Alcotest.(check (list string))
    "oracle certifies" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  (match outcome.Deployment.proxy with
  | Some p -> Alcotest.(check bool) "proxy relayed" true (p.Net.Proxy.forwarded > 0)
  | None -> Alcotest.fail "expected proxy stats");
  Durable.Temp.rm_rf (Deployment.root t)

let suite =
  [
    Alcotest.test_case "3 daemons on loopback, oracle-certified" `Slow
      test_cluster_benign;
    Alcotest.test_case "SIGKILL + respawn from durable store" `Slow test_cluster_kill;
    Alcotest.test_case "through the fault proxy" `Slow test_cluster_proxy;
  ]
