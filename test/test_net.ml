(* Multi-process deployment over real loopback TCP: fork koptnode daemons,
   drive a workload, SIGKILL one mid-run, and certify the merged trace with
   the causality oracle — the subsystem's end-to-end argument, exercised
   from the test suite at a small scale.  The recovery-window tests re-kill
   a successor mid-replay and flood one with client load during replay. *)

module Deployment = Net.Deployment
module App = App_model.Kvstore_app

let counter outcome name =
  try List.assoc name outcome.Deployment.counters with Not_found -> 0

(* Every test gets its own named temp root and removes it however the test
   exits; [destroy] also reaps any daemon a failing assertion left behind. *)
let with_deployment ~prefix launch f =
  let root = Durable.Temp.fresh_dir ~prefix () in
  let t = launch ~root in
  Fun.protect
    ~finally:(fun () -> try Deployment.destroy t with _ -> ())
    (fun () -> f t)

(* Benign network (no proxy): the transport's own framing/reconnect path. *)
let test_cluster_benign () =
  with_deployment ~prefix:"test-net-benign"
    (fun ~root -> Deployment.launch ~n:3 ~k:1 ~seed:11 ~root ())
    (fun t ->
      Deployment.run_workload t ~ops:30 ~seed:3;
      Alcotest.(check bool) "settles" true (Deployment.settle t);
      let outcome = Deployment.finish t in
      Alcotest.(check (list string)) "no trace damage" [] outcome.Deployment.damage;
      Alcotest.(check (list string))
        "oracle certifies" []
        outcome.Deployment.oracle.Harness.Oracle.violations;
      Alcotest.(check bool) "work happened" true (counter outcome "deliveries_total" > 0);
      Alcotest.(check int)
        "no crash synthesized" 0 outcome.Deployment.synthesized_crashes;
      (* Fault-free certification tightening: a benign network decodes every
         frame, and every daemon's graceful quit flushed first, so each wrote
         a clean [Crashed] (no lost interval) instead of leaving a torn tail. *)
      Deployment.check_fault_free outcome;
      let clean_quits =
        List.length
          (List.filter
             (fun { Recovery.Trace.ev; _ } ->
               match ev with
               | Recovery.Trace.Crashed { first_lost = None; _ } -> true
               | _ -> false)
             (Recovery.Trace.events outcome.Deployment.trace))
      in
      Alcotest.(check int) "every daemon quit cleanly" 3 clean_quits)

(* SIGKILL one daemon mid-workload; the respawned incarnation must recover
   from its durable store and the merge must synthesize the Crashed event
   the killed incarnation never wrote. *)
let test_cluster_kill () =
  with_deployment ~prefix:"test-net-kill"
    (fun ~root -> Deployment.launch ~n:3 ~k:3 ~seed:12 ~root ())
    (fun t ->
      Deployment.run_workload t ~ops:24 ~seed:5;
      Deployment.kill t ~dst:1;
      Deployment.run_workload t ~ops:24 ~seed:6;
      ignore (Deployment.settle t : bool);
      let outcome = Deployment.finish t in
      Alcotest.(check (list string))
        "oracle certifies" []
        outcome.Deployment.oracle.Harness.Oracle.violations;
      Alcotest.(check int)
        "one synthesized crash" 1 outcome.Deployment.synthesized_crashes;
      Alcotest.(check bool) "restart recorded" true (counter outcome "restarts_total" >= 1))

(* The E14 smoke path (kill + proxy faults) is what CI runs; keep a tiny
   proxied run here so `dune runtest` covers the fault-injection relay. *)
let test_cluster_proxy () =
  let plan =
    {
      Harness.Netmodel.benign with
      Harness.Netmodel.loss = 0.05;
      duplicate = 0.05;
      reorder = 0.05;
      reorder_spread = 3.;
    }
  in
  with_deployment ~prefix:"test-net-proxy"
    (fun ~root -> Deployment.launch ~n:2 ~k:2 ~plan ~seed:13 ~root ())
    (fun t ->
      Deployment.run_workload t ~ops:30 ~seed:9;
      ignore (Deployment.settle t : bool);
      let outcome = Deployment.finish t in
      Alcotest.(check (list string))
        "oracle certifies" []
        outcome.Deployment.oracle.Harness.Oracle.violations;
      match outcome.Deployment.proxy with
      | Some p ->
        Alcotest.(check bool) "proxy relayed" true (p.Net.Proxy.forwarded > 0)
      | None -> Alcotest.fail "expected proxy stats")

(* ------------------------------------------------------------------ *)
(* Recovery-window chaos: what happens *during* a fast restart's replay. *)

let victim = 1

(* Keys the victim owns: Puts injected at it are applied locally, one log
   record each — so the victim's replay after a kill has a known length. *)
let victim_keys ~n ~count =
  let rec collect i acc = function
    | 0 -> List.rev acc
    | left ->
      let key = Fmt.str "chaos-%d" i in
      if App.owner ~n key = victim then collect (i + 1) (key :: acc) (left - 1)
      else collect (i + 1) acc left
  in
  collect 0 [] count

(* The replay pump paces itself at t_replay abstract units per record; the
   10x coarser clock stretches a ~200-record replay to ~100 ms of wall
   clock, wide enough for the driver to land a second kill (or a flood of
   client load) inside the recovery window. *)
let chaos_time_scale = 10. *. Recovery.Config.default_time_scale

let load_victim t keys =
  List.iteri
    (fun i key ->
      Deployment.inject t ~dst:victim (App.Put { key; value = i });
      if i mod 16 = 15 then Thread.delay 0.002)
    keys

(* Poll until the successor reports an active replay; [false] if the
   window closed before we caught it (small machines can finish the replay
   between polls — the test still re-kills, just without the guarantee). *)
let await_recovering t =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec loop () =
    match Deployment.status t ~dst:victim with
    | Some s when s.Net.Wire_codec.st_recovering -> true
    | _ -> Unix.gettimeofday () < deadline && (Thread.delay 0.005; loop ())
  in
  loop ()

let certify ~k outcome =
  Alcotest.(check (list string))
    "oracle certifies" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  Alcotest.(check bool)
    "risk within K" true
    (outcome.Deployment.oracle.Harness.Oracle.max_risk <= k)

(* SIGKILL, then SIGKILL the successor again mid-replay: the third
   incarnation recovers from a store that already holds a failure
   announcement for the second, and the merged trace must still certify. *)
let test_kill_during_replay () =
  let k = 2 in
  with_deployment ~prefix:"test-net-rekill"
    (fun ~root ->
      Deployment.launch ~n:3 ~k ~ckpt_interval:0. ~time_scale:chaos_time_scale
        ~seed:31 ~root ())
    (fun t ->
      load_victim t (victim_keys ~n:3 ~count:200);
      Alcotest.(check bool) "settles before kill" true
        (Deployment.settle ~timeout:120. t);
      Deployment.kill_only t ~dst:victim;
      Deployment.respawn t ~dst:victim;
      let caught = await_recovering t in
      Deployment.kill_only t ~dst:victim;
      Deployment.respawn t ~dst:victim;
      Alcotest.(check bool) "settles after re-kill" true
        (Deployment.settle ~timeout:120. t);
      let outcome = Deployment.finish t in
      certify ~k outcome;
      Alcotest.(check int)
        "two synthesized crashes" 2 outcome.Deployment.synthesized_crashes;
      (* Metrics files are written on graceful quit only, so the summed
         restart counter sees just the surviving incarnation. *)
      Alcotest.(check bool) "restart recorded" true (counter outcome "restarts_total" >= 1);
      (* [caught] means the second kill was fired while the status socket
         reported an active replay; either way the final incarnation must
         have certified a completed recovery.  (When the window was hit,
         the second incarnation died before its own [Recovery_completed],
         so at most the first and third wrote one.) *)
      let completions =
        List.length
          (List.filter
             (fun { Recovery.Trace.ev; _ } ->
               match ev with
               | Recovery.Trace.Recovery_completed { pid; _ } -> pid = victim
               | _ -> false)
             (Recovery.Trace.events outcome.Deployment.trace))
      in
      Alcotest.(check bool) "final incarnation completed recovery" true
        (completions >= 1);
      if caught then
        Alcotest.(check bool) "mid-replay kill left at most two completions" true
          (completions <= 2))

(* Flood the successor with client load while it replays: parked requests
   for unrecovered partitions must all drain, and certification must hold
   with the replay and the fresh deliveries interleaved in the trace. *)
let test_flood_during_replay () =
  let k = 2 in
  with_deployment ~prefix:"test-net-flood"
    (fun ~root ->
      Deployment.launch ~n:3 ~k ~ckpt_interval:0. ~time_scale:chaos_time_scale
        ~seed:32 ~root ())
    (fun t ->
      let keys = victim_keys ~n:3 ~count:200 in
      load_victim t keys;
      Alcotest.(check bool) "settles before kill" true
        (Deployment.settle ~timeout:120. t);
      Deployment.kill_only t ~dst:victim;
      Deployment.respawn t ~dst:victim;
      (* No waiting: the flood races the replay — overwrites of replayed
         keys plus Gets that park on unrecovered partitions. *)
      List.iteri
        (fun i key ->
          Deployment.inject t ~dst:victim
            (if i mod 3 = 2 then App.Get key
             else App.Put { key; value = 10_000 + i }))
        (List.filteri (fun i _ -> i mod 4 = 0) keys);
      Alcotest.(check bool) "settles after flood" true
        (Deployment.settle ~timeout:120. t);
      let outcome = Deployment.finish t in
      certify ~k outcome;
      Alcotest.(check bool) "flood was delivered" true
        (counter outcome "outputs_committed_total" > 0);
      Alcotest.(check bool) "replay happened" true (counter outcome "replayed_total" > 0))

(* The live stats plane end to end: every daemon must answer the control
   socket's Stats arm mid-load with a parseable exposition covering the
   delivery, flush, transport and recovery metric families; a SIGKILLed
   daemon's successor must answer again; and the Quit-time metrics files
   must merge into the outcome snapshot with the always-on phase spans
   aboard. *)
let test_stats_plane_live () =
  let k = 2 in
  with_deployment ~prefix:"test-net-stats"
    (fun ~root -> Deployment.launch ~n:3 ~k ~seed:14 ~root ())
    (fun t ->
      Deployment.run_workload t ~ops:30 ~seed:4;
      let scrape_ok pid =
        match Deployment.scrape t ~dst:pid with
        | Some (Ok snap) -> snap
        | Some (Error e) ->
          Alcotest.fail (Fmt.str "pid %d: unparseable exposition: %s" pid e)
        | None -> Alcotest.fail (Fmt.str "pid %d: no Stats reply" pid)
      in
      let live = Obs.Snapshot.merge_all (List.map scrape_ok [ 0; 1; 2 ]) in
      Alcotest.(check bool) "mid-load deliveries scraped" true
        (Obs.Snapshot.counter live "deliveries_total" > 0);
      Alcotest.(check bool) "flush family present" true
        (Obs.Snapshot.counter live "flush_rounds_total" > 0);
      Alcotest.(check bool) "transport family present" true
        (Obs.Snapshot.counter live "transport_frames_sent_total" > 0);
      Alcotest.(check bool) "recovery gauge present" true
        (List.exists
           (fun ((name, _), _) -> name = "recovery_active")
           (Obs.Snapshot.bindings live));
      (match Obs.Snapshot.hist live "fsync_seconds" with
      | Some h ->
        Alcotest.(check bool) "fsyncs timed" true (Obs.Snapshot.hist_count h > 0)
      | None -> Alcotest.fail "fsync_seconds histogram missing");
      Deployment.kill t ~dst:1;
      Deployment.run_workload t ~ops:12 ~seed:5;
      let after = scrape_ok 1 in
      Alcotest.(check bool) "successor answers Stats after SIGKILL" true
        (Obs.Snapshot.counter after "batches_total" > 0);
      ignore (Deployment.settle t : bool);
      let outcome = Deployment.finish t in
      certify ~k outcome;
      Alcotest.(check bool) "outcome merges daemon snapshots" true
        (Obs.Snapshot.counter outcome.Deployment.obs "deliveries_total" > 0);
      match
        Obs.Snapshot.hist outcome.Deployment.obs
          ~labels:[ ("phase", "handle") ]
          "phase_seconds"
      with
      | Some h ->
        Alcotest.(check bool) "phase spans always on" true
          (Obs.Snapshot.hist_count h > 0)
      | None -> Alcotest.fail "phase_seconds{phase=\"handle\"} missing")

(* Satellite of the churn work: a writer parked in a multi-second dial
   backoff must notice [close]'s stop flag within a slice, not sleep out
   the rest of its nap.  We point the transport at a port nothing listens
   on with a 3 s backoff floor, let the writer fail its first dial and
   park, then close and require the queued frame to be accounted (sent +
   dropped covers every accepted frame) well inside one second. *)
let test_shutdown_latency_bounded () =
  let reserve_port () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close sock;
    port
  in
  let dead_port = reserve_port () in
  let transport =
    Net.Transport.create ~self:0 ~listen_port:(reserve_port ())
      ~peers:[ (1, dead_port) ]
      ~on_frame:(fun ~src:_ ~kind:_ ~body:_ -> ())
      ~backoff_base:3.0 ~backoff_cap:3.0 ()
  in
  Net.Transport.send transport ~dst:1 "doomed frame";
  (* Let the writer pop the frame, fail the dial, and park in backoff. *)
  Thread.delay 0.3;
  let t0 = Unix.gettimeofday () in
  Net.Transport.close transport;
  let deadline = t0 +. 1.0 in
  let rec await_accounting () =
    let s = Net.Transport.stats transport in
    if s.Net.Transport.frames_sent + s.Net.Transport.frames_dropped >= 1 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail
        "shutdown latency unbounded: frame still unaccounted 1 s after close \
         (writer slept out its backoff)"
    else begin
      Thread.delay 0.01;
      await_accounting ()
    end
  in
  await_accounting ();
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Fmt.str "close interrupted a 3 s backoff in %.3f s" elapsed)
    true
    (elapsed < 1.0);
  Alcotest.(check int) "frame counted dropped, not lost" 1
    (Net.Transport.stats transport).Net.Transport.frames_dropped

let suite =
  [
    Alcotest.test_case "shutdown interrupts dial backoff" `Quick
      test_shutdown_latency_bounded;
    Alcotest.test_case "3 daemons on loopback, oracle-certified" `Slow
      test_cluster_benign;
    Alcotest.test_case "SIGKILL + respawn from durable store" `Slow test_cluster_kill;
    Alcotest.test_case "live stats plane: scrape, kill, merge" `Slow
      test_stats_plane_live;
    Alcotest.test_case "through the fault proxy" `Slow test_cluster_proxy;
    Alcotest.test_case "SIGKILL again mid-replay, certified" `Slow
      test_kill_during_replay;
    Alcotest.test_case "client flood during replay, certified" `Slow
      test_flood_during_replay;
  ]
